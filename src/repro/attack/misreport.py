"""Weight misreporting strategy of Cheng et al. [7] (Theorem 10 substrate).

Agent ``v`` reports ``x in [0, w_v]`` instead of its true weight.  Theorem
10 states the equilibrium utility ``U_v(x)`` is continuous and monotonically
non-decreasing in ``x``, hence misreporting alone never profits (the
mechanism is truthful) -- the Sybil analysis leans on this monotonicity at
every stage, and the EXP-T10 experiment verifies it numerically.

On a ring, wiring *both* neighbors to one fictitious node in a Sybil attack
is exactly this strategy with ``x = w_{v^1}``, which is why the attack code
only needs the one-neighbor-each split.
"""

from __future__ import annotations

from typing import Sequence

from ..core import bd_allocation, bottleneck_decomposition
from ..engine import EngineContext
from ..exceptions import AttackError
from ..graphs import WeightedGraph
from ..numeric import Backend, FLOAT, Scalar

__all__ = ["report_weight", "utility_of_report", "utility_curve", "alpha_curve"]


def report_weight(g: WeightedGraph, v: int, x: Scalar, backend: Backend = FLOAT) -> WeightedGraph:
    """The network with ``v``'s weight replaced by its report ``x``."""
    xs = backend.scalar(x)
    wv = backend.scalar(g.weights[v])
    if xs < 0 or xs > wv:
        raise AttackError(f"report {x!r} outside [0, w_v = {g.weights[v]!r}]")
    return g.with_weight(v, xs)


def utility_of_report(
    g: WeightedGraph, v: int, x: Scalar, backend: Backend = FLOAT,
    ctx: EngineContext | None = None,
) -> Scalar:
    """``U_v(x)``: equilibrium utility of ``v`` when it reports ``x``."""
    report = report_weight(g, v, x, backend)
    return bd_allocation(report, backend=backend, ctx=ctx).utilities[v]


def utility_curve(
    g: WeightedGraph, v: int, xs: Sequence[Scalar], backend: Backend = FLOAT,
    ctx: EngineContext | None = None,
) -> list[Scalar]:
    """``U_v(x)`` sampled on a grid (EXP-T10 / Fig. 2 style sweeps)."""
    return [utility_of_report(g, v, x, backend, ctx) for x in xs]


def alpha_curve(
    g: WeightedGraph, v: int, xs: Sequence[Scalar], backend: Backend = FLOAT,
    ctx: EngineContext | None = None,
) -> list[Scalar]:
    """``alpha_v(x)`` sampled on a grid (Proposition 11 / Fig. 2)."""
    out = []
    for x in xs:
        d = bottleneck_decomposition(report_weight(g, v, x, backend), backend, ctx)
        out.append(d.alpha_of(v))
    return out
