"""Incentive ratios (Definition 7).

``zeta_v`` is the best Sybil utility over the truthful utility for one
agent; ``zeta`` of an instance maximizes over agents.  Theorem 8 asserts
``zeta <= 2`` on every ring, with the bound tight; EXP-T8 sweeps these
functions over instance families.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine import EngineContext
from ..graphs import WeightedGraph, require_ring
from ..numeric import Backend, FLOAT
from .best_response import BestResponse, best_split

__all__ = ["InstanceRatio", "incentive_ratio_of_vertex", "incentive_ratio"]


@dataclass(frozen=True)
class InstanceRatio:
    """Worst-case ratio of one ring instance.

    ``per_vertex[v]`` is the full best response of agent ``v``; ``worst``
    indexes the maximizer.
    """

    graph: WeightedGraph
    per_vertex: tuple[BestResponse, ...]
    worst: int

    @property
    def zeta(self) -> float:
        return self.per_vertex[self.worst].ratio

    @property
    def worst_response(self) -> BestResponse:
        return self.per_vertex[self.worst]


def incentive_ratio_of_vertex(
    g: WeightedGraph,
    v: int,
    grid: int = 64,
    backend: Backend = FLOAT,
    ctx: EngineContext | None = None,
    method: str = "grid",
) -> BestResponse:
    """``zeta_v``: best response of a single agent (Definition 7).

    ``method`` is forwarded to :func:`~repro.attack.best_response.best_split`
    (``"grid"``, ``"exact"``, or ``"auto"``).
    """
    return best_split(g, v, grid=grid, backend=backend, ctx=ctx, method=method)


def incentive_ratio(
    g: WeightedGraph,
    grid: int = 64,
    backend: Backend = FLOAT,
    ctx: EngineContext | None = None,
    method: str = "grid",
) -> InstanceRatio:
    """``zeta`` of one ring instance: maximize ``zeta_v`` over agents."""
    require_ring(g)
    responses = tuple(
        best_split(g, v, grid=grid, backend=backend, ctx=ctx, method=method)
        for v in g.vertices()
    )
    worst = max(range(g.n), key=lambda v: responses[v].ratio)
    return InstanceRatio(graph=g, per_vertex=responses, worst=worst)
