"""Worst-case instance search: which rings maximize the incentive ratio?

Theorem 8 bounds ``zeta <= 2`` on every ring; this module searches the
instance space for the supremum, which is how the library's lower-bound
family (:mod:`.lower_bound`) was discovered.  Two layers:

* random restarts over log-uniform weights (the worst cases live at extreme
  weight spreads), and
* multiplicative coordinate ascent: perturb one weight at a time by a
  factor, keep improvements, shrink the step when a sweep stalls.

Every evaluation is a full best-response search, so this is the most
expensive routine in the library; the EXP-T8 bench times it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine import EngineContext
from ..exceptions import AttackError
from ..graphs import WeightedGraph, random_ring, ring
from ..numeric import Backend, FLOAT
from .best_response import BestResponse
from .incentive_ratio import incentive_ratio

__all__ = [
    "WorstCaseResult",
    "search_worst_ring",
    "scoped_rng",
    "search_worst_ring_scoped",
]


@dataclass(frozen=True)
class WorstCaseResult:
    """Best instance found by the search."""

    graph: WeightedGraph
    response: BestResponse
    evaluations: int

    @property
    def zeta(self) -> float:
        return self.response.ratio


def scoped_rng(seed: int, epoch: int = 0, agent: int = 0) -> np.random.Generator:
    """Per-call generator derived from the ``(seed, epoch, agent)`` scope.

    Callers used to re-seed ``default_rng(seed)`` at every search, so two
    searches inside one scenario epoch drew *identical* candidate streams
    -- the restarts of agent 1's search replayed agent 0's rings, silently
    halving the explored instance space.  Deriving the stream through a
    ``SeedSequence`` over the full scope makes every (epoch, agent) cell
    statistically independent while staying a pure function of the scope,
    the same per-cell discipline as :func:`repro.analysis.sweep.cell_rng`.
    """
    return np.random.default_rng(
        np.random.SeedSequence([int(seed), int(epoch), int(agent)])
    )


def search_worst_ring_scoped(
    n: int,
    seed: int,
    epoch: int = 0,
    agent: int = 0,
    **kwargs,
) -> WorstCaseResult:
    """:func:`search_worst_ring` with the RNG derived from its scope.

    The entry point scenario code should use: passing ``(seed, epoch,
    agent)`` instead of a shared generator keeps concurrent searches
    deterministic *and* distinct (see :func:`scoped_rng`).  Remaining
    keyword arguments forward to :func:`search_worst_ring`.
    """
    return search_worst_ring(n, scoped_rng(seed, epoch, agent), **kwargs)


def search_worst_ring(
    n: int,
    rng: np.random.Generator,
    restarts: int = 4,
    sweeps: int = 6,
    grid: int = 48,
    low: float = 1e-3,
    high: float = 1e3,
    backend: Backend = FLOAT,
    ctx: EngineContext | None = None,
) -> WorstCaseResult:
    """Search rings of size ``n`` for a high incentive ratio.

    Returns the best instance found; by Theorem 8 its ``zeta`` is always
    observed ``<= 2`` (asserted by the EXP-T8 experiment, not here -- the
    search itself stays judgement-free so tests can probe the raw numbers).
    """
    if n < 3:
        raise AttackError("rings need n >= 3")
    best: WorstCaseResult | None = None
    evals = 0

    def evaluate(g: WeightedGraph) -> BestResponse:
        nonlocal evals
        evals += 1
        inst = incentive_ratio(g, grid=grid, backend=backend, ctx=ctx)
        return inst.worst_response

    for _ in range(max(1, restarts)):
        g = random_ring(n, rng, "loguniform", low, high)
        resp = evaluate(g)
        step = 4.0
        for _ in range(max(1, sweeps)):
            improved = False
            for v in range(n):
                for factor in (step, 1.0 / step):
                    ws = list(g.weights)
                    ws[v] = min(max(ws[v] * factor, low / 10), high * 10)
                    cand = ring(ws)
                    cand_resp = evaluate(cand)
                    if cand_resp.ratio > resp.ratio:
                        g, resp = cand, cand_resp
                        improved = True
            if not improved:
                step = np.sqrt(step)
                if step < 1.05:
                    break
        if best is None or resp.ratio > best.response.ratio:
            best = WorstCaseResult(graph=g, response=resp, evaluations=evals)
    assert best is not None
    return WorstCaseResult(graph=best.graph, response=best.response, evaluations=evals)
