"""Worst-case instance search: which rings maximize the incentive ratio?

Theorem 8 bounds ``zeta <= 2`` on every ring; this module searches the
instance space for the supremum, which is how the library's lower-bound
family (:mod:`.lower_bound`) was discovered.  Two layers:

* random restarts over log-uniform weights (the worst cases live at extreme
  weight spreads), and
* multiplicative coordinate ascent: perturb one weight at a time by a
  factor, keep improvements, shrink the step when a sweep stalls.

Every evaluation is a full best-response search, so this is the most
expensive routine in the library; the EXP-T8 bench times it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine import EngineContext
from ..exceptions import AttackError
from ..graphs import WeightedGraph, random_ring, ring
from ..numeric import Backend, FLOAT
from .best_response import BestResponse
from .incentive_ratio import incentive_ratio

__all__ = ["WorstCaseResult", "search_worst_ring"]


@dataclass(frozen=True)
class WorstCaseResult:
    """Best instance found by the search."""

    graph: WeightedGraph
    response: BestResponse
    evaluations: int

    @property
    def zeta(self) -> float:
        return self.response.ratio


def search_worst_ring(
    n: int,
    rng: np.random.Generator,
    restarts: int = 4,
    sweeps: int = 6,
    grid: int = 48,
    low: float = 1e-3,
    high: float = 1e3,
    backend: Backend = FLOAT,
    ctx: EngineContext | None = None,
) -> WorstCaseResult:
    """Search rings of size ``n`` for a high incentive ratio.

    Returns the best instance found; by Theorem 8 its ``zeta`` is always
    observed ``<= 2`` (asserted by the EXP-T8 experiment, not here -- the
    search itself stays judgement-free so tests can probe the raw numbers).
    """
    if n < 3:
        raise AttackError("rings need n >= 3")
    best: WorstCaseResult | None = None
    evals = 0

    def evaluate(g: WeightedGraph) -> BestResponse:
        nonlocal evals
        evals += 1
        inst = incentive_ratio(g, grid=grid, backend=backend, ctx=ctx)
        return inst.worst_response

    for _ in range(max(1, restarts)):
        g = random_ring(n, rng, "loguniform", low, high)
        resp = evaluate(g)
        step = 4.0
        for _ in range(max(1, sweeps)):
            improved = False
            for v in range(n):
                for factor in (step, 1.0 / step):
                    ws = list(g.weights)
                    ws[v] = min(max(ws[v] * factor, low / 10), high * 10)
                    cand = ring(ws)
                    cand_resp = evaluate(cand)
                    if cand_resp.ratio > resp.ratio:
                        g, resp = cand, cand_resp
                        improved = True
            if not improved:
                step = np.sqrt(step)
                if step < 1.05:
                    break
        if best is None or resp.ratio > best.response.ratio:
            best = WorstCaseResult(graph=g, response=resp, evaluations=evals)
    assert best is not None
    return WorstCaseResult(graph=best.graph, response=best.response, evaluations=evals)
