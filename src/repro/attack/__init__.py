"""Sybil attack machinery: splits, best responses, incentive ratios."""

from .sybil import (
    SplitOutcome,
    attacker_utility,
    honest_split,
    honest_split_from_allocation,
    split_ring,
)
from .misreport import alpha_curve, report_weight, utility_curve, utility_of_report
from .best_response import BestResponse, best_split, utility_of_split_curve
from .incentive_ratio import InstanceRatio, incentive_ratio, incentive_ratio_of_vertex
from .lower_bound import (
    ATTACKER,
    LowerBoundPoint,
    lower_bound_ratio,
    lower_bound_ring,
    lower_bound_series,
)
from .worst_case import (
    WorstCaseResult,
    scoped_rng,
    search_worst_ring,
    search_worst_ring_scoped,
)
from .exact_response import ExactBestResponse, exact_attacker_utility, exact_best_split
from .combined import (
    CombinedBestResponse,
    ComposedAttack,
    best_combined_split,
    best_misreport_split,
    combined_attacker_utility,
    misreport_then_cut,
    misreport_then_split,
)
from .multi_split import (
    MultiBestResponse,
    MultiSplit,
    best_multi_split,
    set_partitions,
    split_multi,
)
from .general import (
    GeneralBestResponse,
    GeneralSplit,
    best_general_split,
    general_incentive_ratio,
    neighbor_bipartitions,
    split_general,
)

__all__ = [
    "SplitOutcome",
    "attacker_utility",
    "honest_split",
    "honest_split_from_allocation",
    "split_ring",
    "alpha_curve",
    "report_weight",
    "utility_curve",
    "utility_of_report",
    "BestResponse",
    "best_split",
    "utility_of_split_curve",
    "InstanceRatio",
    "incentive_ratio",
    "incentive_ratio_of_vertex",
    "ATTACKER",
    "LowerBoundPoint",
    "lower_bound_ratio",
    "lower_bound_ring",
    "lower_bound_series",
    "WorstCaseResult",
    "search_worst_ring",
    "scoped_rng",
    "search_worst_ring_scoped",
    "ExactBestResponse",
    "exact_attacker_utility",
    "exact_best_split",
    "GeneralBestResponse",
    "GeneralSplit",
    "best_general_split",
    "general_incentive_ratio",
    "neighbor_bipartitions",
    "split_general",
    "MultiBestResponse",
    "MultiSplit",
    "best_multi_split",
    "set_partitions",
    "split_multi",
    "CombinedBestResponse",
    "best_combined_split",
    "combined_attacker_utility",
    "ComposedAttack",
    "misreport_then_split",
    "misreport_then_cut",
    "best_misreport_split",
]
