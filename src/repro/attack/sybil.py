"""Sybil attack on a ring (Section II-D).

A manipulative agent ``v`` on a ring splits into ``m <= d_v = 2`` fictitious
nodes.  The only non-degenerate assignment connects one ring neighbor to
each of ``v^1`` and ``v^2``, turning the ring into the paper's path
``P_v(w_1, w_2)`` with ``v^1``/``v^2`` as the endpoints (the other
assignment wires both neighbors to a single node, which is exactly the
*misreporting* strategy of [7] and is handled by :mod:`.misreport`; by
Theorem 10 it can never gain).

This module provides the split itself, the attacker's post-split utility,
and the *honest split* ``(w_1^0, w_2^0)`` of Lemma 9 -- the amounts ``v``
sends to its two neighbors at the truthful equilibrium, whose split
provably leaves every utility unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import Allocation, BottleneckDecomposition, bd_allocation, bottleneck_decomposition
from ..engine import EngineContext
from ..exceptions import AttackError
from ..graphs import WeightedGraph, cut_ring_at, ring_neighbors
from ..numeric import Backend, FLOAT, Scalar

__all__ = [
    "SplitOutcome",
    "split_ring",
    "attacker_utility",
    "honest_split",
    "honest_split_from_allocation",
]


@dataclass(frozen=True)
class SplitOutcome:
    """Everything the analysis needs about one split ``P_v(w1, w2)``.

    ``v1``/``v2`` are the path ids of the fictitious endpoints; ``path`` is
    the split graph; utilities are read from the BD allocation of the path.
    """

    path: WeightedGraph
    v1: int
    v2: int
    w1: Scalar
    w2: Scalar
    decomposition: BottleneckDecomposition
    allocation: Allocation

    @property
    def utility_v1(self) -> Scalar:
        return self.allocation.utilities[self.v1]

    @property
    def utility_v2(self) -> Scalar:
        return self.allocation.utilities[self.v2]

    @property
    def attacker_utility(self) -> Scalar:
        """``U'_v = U_{v^1} + U_{v^2}`` (Section II-D)."""
        return self.utility_v1 + self.utility_v2

    def alpha_v1(self) -> Scalar:
        return self.decomposition.alpha_of(self.v1)

    def alpha_v2(self) -> Scalar:
        return self.decomposition.alpha_of(self.v2)


def split_ring(
    g: WeightedGraph,
    v: int,
    w1: Scalar,
    w2: Scalar,
    backend: Backend = FLOAT,
    ctx: EngineContext | None = None,
) -> SplitOutcome:
    """Perform the Sybil split and solve the resulting path.

    ``w1 + w2`` must equal ``w_v`` (the attacker cannot mint resource) and
    both parts must be non-negative.
    """
    wv = g.weights[v]
    w1b = backend.scalar(w1)
    w2b = backend.scalar(w2)
    if w1b < 0 or w2b < 0:
        raise AttackError(f"split weights must be non-negative, got ({w1!r}, {w2!r})")
    total = w1b + w2b
    want = backend.scalar(wv)
    ok = (total == want) if backend.is_exact else abs(float(total) - float(wv)) <= backend.tol * max(1.0, float(wv))
    if not ok:
        raise AttackError(f"split weights ({w1!r}, {w2!r}) do not sum to w_v = {wv!r}")
    path, v1, v2 = cut_ring_at(g, v, w1b, w2b)
    decomp = bottleneck_decomposition(path, backend, ctx)
    alloc = bd_allocation(path, decomp, backend, ctx)
    return SplitOutcome(
        path=path, v1=v1, v2=v2, w1=w1b, w2=w2b,
        decomposition=decomp, allocation=alloc,
    )


def attacker_utility(
    g: WeightedGraph,
    v: int,
    w1: Scalar,
    w2: Scalar,
    backend: Backend = FLOAT,
    ctx: EngineContext | None = None,
) -> Scalar:
    """``U'_v(P_v(w1, w2))`` without keeping the full outcome."""
    return split_ring(g, v, w1, w2, backend, ctx).attacker_utility


def honest_split(
    g: WeightedGraph,
    v: int,
    backend: Backend = FLOAT,
    ctx: EngineContext | None = None,
) -> tuple[Scalar, Scalar]:
    """The Lemma 9 honest split ``(w_1^0, w_2^0)``.

    ``w_1^0`` is what ``v`` sends to its smaller-id ring neighbor at the
    truthful equilibrium and ``w_2^0`` what it sends to the other one --
    matching the orientation convention of ``cut_ring_at`` (``v^1`` attaches
    to the smaller-id neighbor).
    """
    alloc = bd_allocation(g, backend=backend, ctx=ctx)
    return honest_split_from_allocation(g, v, alloc, backend)


def honest_split_from_allocation(
    g: WeightedGraph, v: int, alloc: Allocation, backend: Backend = FLOAT
) -> tuple[Scalar, Scalar]:
    """:func:`honest_split` from an already-computed truthful allocation.

    The best-response search computes the truthful allocation once for the
    utility denominator and reuses it here instead of solving ``g`` again.
    """
    u_a, u_b = ring_neighbors(g, v)
    zero = backend.scalar(0)
    w1 = alloc.x.get((v, u_a), zero)
    w2 = alloc.x.get((v, u_b), zero)
    # At equilibrium v spends exactly w_v; float round-off (or a degenerate
    # zero-alpha corner) can leave residue, which is folded into the first
    # side so the pair sums to w_v exactly (split_ring checks this).
    want = backend.scalar(g.weights[v])
    w1 = want - w2
    if w1 < 0:
        w1, w2 = backend.scalar(0), want
    return w1, w2
