"""Sybil attacks with more than two identities (``2 <= m <= d_v``).

Definition 7 allows the manipulator to split into up to ``d_v`` fictitious
nodes.  On a ring ``d_v = 2`` caps the attack at two identities -- the case
the paper analyzes -- but on general graphs (Section IV's conjecture) a
star center, say, could spawn one identity per leaf.  This module
implements the general ``m``-way split: a set partition of ``Gamma(v)``
into ``m`` nonempty groups plus a weight vector on the ``m`` copies, and a
best-response search over both.

The EXP-GEN/EXP-MSP ablation uses it to test that extra identities never
push the ratio past the conjectured bound of 2 (and, empirically, rarely
beat the best 2-way split at all).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..core import bd_allocation
from ..exceptions import AttackError
from ..graphs import WeightedGraph
from ..numeric import Backend, FLOAT, Scalar

__all__ = [
    "MultiSplit",
    "MultiBestResponse",
    "split_multi",
    "set_partitions",
    "best_multi_split",
]


@dataclass(frozen=True)
class MultiSplit:
    """One solved m-way Sybil strategy."""

    graph: WeightedGraph
    copies: tuple[int, ...]
    weights: tuple[Scalar, ...]
    utility: Scalar


def split_multi(
    g: WeightedGraph,
    v: int,
    groups: Sequence[Sequence[int]],
    weights: Sequence[Scalar],
    backend: Backend = FLOAT,
) -> MultiSplit:
    """Split ``v`` into ``m = len(groups)`` identities.

    ``groups`` partitions ``Gamma(v)``; group ``i``'s neighbors rewire to
    copy ``i``.  Copy 0 reuses ``v``'s id; copies ``1..m-1`` get fresh ids
    ``n, n+1, ...``.  ``weights`` are the copies' endowments and must sum
    to ``w_v``.
    """
    nbrs = set(g.neighbors(v))
    m = len(groups)
    if m < 1 or m > len(nbrs):
        raise AttackError(f"need 1 <= m <= d_v = {len(nbrs)}, got m = {m}")
    if len(weights) != m:
        raise AttackError("one weight per identity required")
    flat: list[int] = [u for grp in groups for u in grp]
    if len(flat) != len(set(flat)) or set(flat) != nbrs or any(not grp for grp in groups):
        raise AttackError("groups must partition Gamma(v) into nonempty parts")
    ws = [backend.scalar(x) for x in weights]
    if any(x < 0 for x in ws):
        raise AttackError("identity weights must be non-negative")
    total, want = backend.total(ws), backend.scalar(g.weights[v])
    ok = (total == want) if backend.is_exact else (
        abs(float(total) - float(want)) <= backend.tol * max(1.0, float(want)))
    if not ok:
        raise AttackError(f"identity weights must sum to w_v = {g.weights[v]!r}")

    n = g.n
    copy_id = [v] + [n + i for i in range(m - 1)]
    owner = {u: copy_id[i] for i, grp in enumerate(groups) for u in grp}
    edges = []
    for (a, b) in g.edges:
        if a == v:
            edges.append((owner[b], b))
        elif b == v:
            edges.append((a, owner[a]))
        else:
            edges.append((a, b))
    new_weights = list(g.weights) + [backend.scalar(0)] * (m - 1)
    for i, cid in enumerate(copy_id):
        new_weights[cid] = ws[i]
    labels = list(g.labels) + [f"{g.labels[v]}^{i + 2}" for i in range(m - 1)]
    g2 = WeightedGraph(n + m - 1, edges, new_weights, labels)
    alloc = bd_allocation(g2, backend=backend)
    utility = backend.total([alloc.utilities[cid] for cid in copy_id])
    return MultiSplit(graph=g2, copies=tuple(copy_id), weights=tuple(ws), utility=utility)


def set_partitions(items: Sequence[int], m: int) -> Iterator[list[list[int]]]:
    """All partitions of ``items`` into exactly ``m`` nonempty groups.

    Canonical form (first occurrence order) so copy-relabelling duplicates
    never appear; the weight search treats copies symmetrically anyway.
    """
    items = list(items)
    if m < 1 or m > len(items):
        return

    def rec(idx: int, groups: list[list[int]]):
        remaining = len(items) - idx
        if idx == len(items):
            if len(groups) == m:
                yield [list(grp) for grp in groups]
            return
        if len(groups) + remaining < m:
            return
        for grp in groups:
            grp.append(items[idx])
            yield from rec(idx + 1, groups)
            grp.pop()
        if len(groups) < m:
            groups.append([items[idx]])
            yield from rec(idx + 1, groups)
            groups.pop()

    yield from rec(0, [])


@dataclass(frozen=True)
class MultiBestResponse:
    """Best m-way strategy found."""

    vertex: int
    m: int
    groups: tuple[tuple[int, ...], ...]
    weights: tuple[float, ...]
    utility: float
    honest_utility: float
    strategies_tried: int

    @property
    def ratio(self) -> float:
        if self.honest_utility == 0:
            return 1.0
        return self.utility / self.honest_utility


def _compositions(units: int, m: int) -> Iterator[tuple[int, ...]]:
    """All ways to write ``units`` as an ordered sum of ``m`` non-negatives."""
    if m == 1:
        yield (units,)
        return
    for k in range(units + 1):
        for rest in _compositions(units - k, m - 1):
            yield (k, *rest)


def _simplex_grid(total: float, m: int, steps: int) -> Iterator[tuple[float, ...]]:
    """Lattice points of the weight simplex (compositions of ``steps``)."""
    if steps < 1:
        yield tuple([total] + [0.0] * (m - 1))
        return
    for comp in _compositions(steps, m):
        yield tuple(total * k / steps for k in comp)


def best_multi_split(
    g: WeightedGraph,
    v: int,
    m: int,
    steps: int = 12,
    refine_rounds: int = 2,
    backend: Backend = FLOAT,
) -> MultiBestResponse:
    """Search partitions x weight simplex for the best m-way attack.

    The simplex is scanned on a composition lattice (``steps`` divisions),
    then locally refined by halving the lattice around the incumbent.
    Exhaustive enough for the small-degree instances the ablation uses.
    """
    if g.degree(v) < m:
        raise AttackError(f"vertex {v} has degree {g.degree(v)} < m = {m}")
    # Backend arithmetic keeps the lattice exact: on the Fraction backend
    # `wv * k / steps` sums back to w_v identically, which split_multi's
    # exact-equality budget check requires (float lattices don't).
    wv = backend.scalar(g.weights[v])
    honest = float(bd_allocation(g, backend=backend).utilities[v])
    best = MultiBestResponse(
        vertex=v, m=m, groups=(), weights=(), utility=honest,
        honest_utility=honest, strategies_tried=0,
    )
    if wv == 0:
        return best
    tried = 0
    for groups in set_partitions(sorted(g.neighbors(v)), m):
        tried += 1

        def U(ws: tuple[float, ...]) -> float:
            return float(split_multi(g, v, groups, list(ws), backend).utility)

        inc_w, inc_val = None, -np.inf
        for ws in _simplex_grid(wv, m, steps):
            val = U(ws)
            if val > inc_val:
                inc_w, inc_val = ws, val
        # local refinement: shrink the lattice around the incumbent
        span = wv / steps
        for _ in range(refine_rounds):
            span /= 2
            for delta in _simplex_grid(2 * span * (m - 1), m, 2 * (m - 1)):
                cand = tuple(max(0.0, x + d - span) for x, d in zip(inc_w, delta))
                s = sum(cand)
                if s == 0:
                    continue
                cand = tuple(x * wv / s for x in cand)
                val = U(cand)
                if val > inc_val:
                    inc_w, inc_val = cand, val
        if inc_val > best.utility:
            best = MultiBestResponse(
                vertex=v, m=m, groups=tuple(tuple(grp) for grp in groups),
                weights=tuple(inc_w), utility=float(inc_val),
                honest_utility=honest, strategies_tried=tried,
            )
    return MultiBestResponse(
        vertex=best.vertex, m=m, groups=best.groups, weights=best.weights,
        utility=best.utility, honest_utility=honest, strategies_tried=tried,
    )
