"""Lower-bound family: rings whose Sybil incentive ratio approaches 2.

The paper cites [5] for the lower bound of 2 without reprinting the
construction; this module codifies the one-parameter family rediscovered by
:mod:`.worst_case` search (see DESIGN.md, "Substitutions"):

    weights (in ring order)   [1, 1, 1/H, 1/H, H],   attacker v = 1.

Mechanics (all verified by tests/EXP-LB):

* On the ring the maximal bottleneck is ``B_1 = {v, H-vertex}`` with
  ``C_1`` the other three, so the attacker is B class with
  ``alpha_v = (1 + 2/H) / (1 + H) ~ 1/H`` and ``U_v = w_v alpha_v ~ 1/H``.
* Splitting ``v^1``/``v^2`` with ``w_2 ~ 1/H^2`` flips the attacker-side
  neighbor of ``v^2`` into B class: ``v^1`` stays B class keeping
  ``U_{v^1} ~ w_v alpha_v = U_v`` while ``v^2`` becomes a C-class leaf with
  ``U_{v^2} = w_2 / alpha' ~ U_v`` -- doubling the take.
* The ratio satisfies ``zeta_v(H) = 2 - Theta(1/H)``, hence ``sup = 2``:
  together with Theorem 8's upper bound the incentive ratio on rings is
  exactly two.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine import EngineContext
from ..exceptions import AttackError
from ..graphs import WeightedGraph, ring
from ..numeric import Backend, FLOAT
from .best_response import BestResponse, best_split

__all__ = ["ATTACKER", "lower_bound_ring", "lower_bound_ratio", "lower_bound_series"]

#: Index of the manipulative agent in :func:`lower_bound_ring`.
ATTACKER = 1


def lower_bound_ring(H: float) -> WeightedGraph:
    """The 5-ring ``[1, 1, 1/H, 1/H, H]`` (attacker at index 1)."""
    if not H > 1:
        raise AttackError(f"family parameter H must exceed 1, got {H!r}")
    return ring([1.0, 1.0, 1.0 / H, 1.0 / H, float(H)])


def lower_bound_ratio(
    H: float, grid: int = 256, backend: Backend = FLOAT,
    ctx: EngineContext | None = None,
) -> BestResponse:
    """Best response of the family's attacker; ``ratio -> 2`` as ``H -> inf``."""
    return best_split(lower_bound_ring(H), ATTACKER, grid=grid, backend=backend, ctx=ctx)


@dataclass(frozen=True)
class LowerBoundPoint:
    H: float
    zeta: float
    w2_star: float
    predicted: float

    @property
    def gap_to_two(self) -> float:
        return 2.0 - self.zeta


def lower_bound_series(
    Hs, grid: int = 256, backend: Backend = FLOAT,
    ctx: EngineContext | None = None,
) -> list[LowerBoundPoint]:
    """``zeta_v(H)`` along the family, with the ``2 - 2/H`` first-order
    prediction attached (EXP-LB)."""
    out = []
    for H in Hs:
        r = lower_bound_ratio(H, grid=grid, backend=backend, ctx=ctx)
        out.append(
            LowerBoundPoint(H=float(H), zeta=r.ratio, w2_star=r.w2, predicted=2.0 - 2.0 / float(H))
        )
    return out
