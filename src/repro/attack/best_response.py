"""Optimal Sybil weight split ``(w_1^*, w_2^*)`` on a ring.

The attacker maximizes ``U(w_1) = U_{v^1}(w_1) + U_{v^2}(w_v - w_1)`` over
``w_1 in [0, w_v]``.  ``U`` is piecewise smooth: inside an interval where
the path's bottleneck decomposition is combinatorially constant, each term
is either linear (``w * alpha`` with ``alpha`` a ratio of affine functions
of ``w_1``) or hyperbolic (``w / alpha``), so ``U`` is piecewise rational
with finitely many breakpoints.  The optimizer therefore:

1. samples a dense uniform grid (catching every regime of non-trivial
   width),
2. locally refines the best bracket by golden-section search (each regime
   piece is smooth; the refinement converges to the best point of the
   winning piece, including its endpoints, i.e. the breakpoints), and
3. always includes the exact endpoints ``0`` and ``w_v`` and the honest
   split.

An exhaustive-enumeration variant over *exact* rational breakpoints is
provided by :mod:`repro.theory.breakpoints` for small instances; tests
cross-check the two.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from ..engine import EngineContext, resolve_context
from ..exceptions import AttackError
from ..graphs import WeightedGraph, cut_ring_at, require_ring
from ..numeric import Backend, FLOAT, Scalar
from .sybil import attacker_utility, honest_split_from_allocation

__all__ = ["BestResponse", "best_split", "utility_of_split_curve"]

#: ``method="auto"`` promotes the exact-rational search to primary path on
#: exact-backend instances up to this size; beyond it the regime sweep's
#: exact decompositions dominate and the grid search wins.
EXACT_METHOD_MAX_N = 10


@dataclass(frozen=True)
class BestResponse:
    """Result of the best-response search for one attacker."""

    vertex: int
    w1: float
    w2: float
    utility: float
    honest_utility: float

    @property
    def ratio(self) -> float:
        """``zeta_v`` (Definition 7).  1 when the attacker owns nothing."""
        if self.honest_utility == 0:
            return 1.0
        return self.utility / self.honest_utility


def utility_of_split_curve(
    g: WeightedGraph, v: int, w1s, backend: Backend = FLOAT,
    ctx: EngineContext | None = None,
) -> list[float]:
    """``U(w_1)`` sampled on a grid of ``w_1`` values."""
    wv = float(g.weights[v])
    return [
        float(attacker_utility(g, v, float(w1), wv - float(w1), backend, ctx))
        for w1 in w1s
    ]


def best_split(
    g: WeightedGraph,
    v: int,
    grid: int = 64,
    refine_iters: int = 60,
    backend: Backend = FLOAT,
    ctx: EngineContext | None = None,
    method: str = "grid",
) -> BestResponse:
    """Search for ``(w_1^*, w_2^*)`` maximizing the attacker's utility.

    Parameters
    ----------
    grid:
        Number of uniform samples of ``w_1`` (plus endpoints and the honest
        split).  Breakpoint regimes narrower than ``w_v / grid`` can be
        missed by the coarse pass; the golden refinement then recovers the
        optimum only if it lies in the best sampled bracket.  Experiments
        use ``grid >= 64`` which empirically saturates on rings up to
        ``n = 64`` (see EXP-T8 notes in EXPERIMENTS.md).
    refine_iters:
        Golden-section iterations inside the winning bracket (60 iterations
        shrink it by ~1e-12 relative).
    method:
        ``"grid"`` runs the sample-and-refine search above.  ``"exact"``
        promotes :func:`repro.attack.exact_response.exact_best_split` --
        formerly only a certifier -- to the primary path: a regime sweep
        plus per-regime rational optimization, exact on the regimes it
        covers.  ``"auto"`` picks ``"exact"`` on exact backends up to
        ``EXACT_METHOD_MAX_N`` vertices and ``"grid"`` otherwise.
    """
    require_ring(g)
    if grid < 2:
        raise AttackError("grid must have at least 2 points")
    ctx = resolve_context(ctx)
    if method == "auto":
        method = (
            "exact"
            if backend.is_exact and g.n <= EXACT_METHOD_MAX_N
            else "grid"
        )
    if method == "exact":
        # Imported lazily: exact_response pulls in repro.theory at module
        # level, whose stage lemmas import back into this module -- a
        # top-level import here would deadlock package initialization.
        from .exact_response import exact_best_split

        with ctx.counters.timed("best_response"), ctx.span("best_response"):
            r = exact_best_split(g, v, ctx=ctx)
            result = BestResponse(
                vertex=v,
                w1=float(r.w1),
                w2=float(r.w2),
                utility=float(r.utility),
                honest_utility=float(r.honest_utility),
            )
    elif method == "grid":
        with ctx.counters.timed("best_response"), ctx.span("best_response"):
            result = _best_split_search(g, v, grid, refine_iters, backend, ctx)
    else:
        raise AttackError(f"unknown best-response method {method!r}")
    ctx.audit_best_response(g, v, result)
    return result


class _SplitEvaluator:
    """Evaluates ``U(w_1) = U_{v^1} + U_{v^2}`` for one attacker's sweep.

    Three operating modes, chosen once from the engine context:

    * ``engine="classic"`` -- every candidate goes through
      :func:`~repro.attack.sybil.attacker_utility` verbatim (cut the ring,
      full decomposition, full allocation), exactly the pre-columnar path.
    * ``engine="columnar"`` with an auditor attached -- the cut path graph
      is built once and weight-swapped per candidate, and each Dinkelbach
      solve is warm-started from the previous candidate's decomposition,
      but every candidate still gets a full solve and a full, audited
      allocation: auditors see full-fidelity work.
    * ``engine="columnar"`` without an auditor -- additionally, candidates
      bracketed by two already-solved points sharing a decomposition
      signature are *reconstructed* (see :mod:`repro.core.incremental`) and
      certified by their allocation's saturation checks, and full solves
      compute only the two attacker endpoint utilities instead of the whole
      allocation.  Any reconstruction failure falls back to a full solve.

    Reconstructed decompositions are never added to the solved-point
    records: only full solves may serve as bracketing evidence, otherwise
    one optimistic reconstruction could vouch for the next (self-
    confirmation).  Solved points are kept as parallel sorted arrays of
    ``w_1`` and signature for O(log k) bracket lookup.
    """

    def __init__(
        self, g: WeightedGraph, v: int, backend: Backend, ctx: EngineContext
    ) -> None:
        self.g = g
        self.v = v
        self.backend = backend
        self.ctx = ctx
        self.columnar = ctx.engine == "columnar"
        self.fast = self.columnar and ctx.auditor is None
        if self.columnar:
            base, v1, v2 = cut_ring_at(
                g, v, backend.scalar(g.weights[v]), backend.scalar(0)
            )
            self.base = base
            self.v1 = v1
            self.v2 = v2
            # cut_ring_at puts v^1 at id 0 and v^2 at id n; everything in
            # between is the ring interior, constant across candidates.
            self.interior = base.weights[1:-1]
        self.last = None
        self._xs: list[float] = []
        self._sigs: list[tuple] = []
        self._by_sig: dict[tuple, BottleneckDecomposition] = {}

    def utility(self, w1b: Scalar, w2b: Scalar) -> float:
        if not self.columnar:
            return float(
                attacker_utility(self.g, self.v, w1b, w2b, self.backend, self.ctx)
            )
        # Lazy imports: repro.theory imports best_split from this module at
        # package-init time, so a top-level theory import here would cycle.
        from ..core import bd_allocation, bottleneck_decomposition
        from ..core.allocation import (
            certified_endpoint_utilities,
            endpoint_utilities,
        )
        from ..core.incremental import reconstruct_decomposition
        from ..engine.cache import decomposition_key
        from ..exceptions import DecompositionError, InfeasibleFlowError
        from ..theory.breakpoints import decomposition_signature

        ctx, backend = self.ctx, self.backend
        path = self.base._with_weights_unchecked(
            (w1b,) + self.interior + (w2b,)
        )
        if self.fast:
            hint = self._bracketed_hint(float(w1b))
            if hint is not None:
                try:
                    d = reconstruct_decomposition(path, hint, backend, ctx)
                    # Saturation certificate: pairs whose network moved
                    # relative to the (ground-truth) hint are re-solved and
                    # checked; bit-identical pairs are certified
                    # analytically (see certified_endpoint_utilities).
                    u1, u2 = certified_endpoint_utilities(
                        path, d, hint, (self.v1, self.v2), backend, ctx
                    )
                    ctx.cache.put(decomposition_key(path, backend), d)
                    self.last = d
                    return float(u1 + u2)
                except (DecompositionError, InfeasibleFlowError):
                    ctx.counters.reconstruction_fallbacks += 1
        d = bottleneck_decomposition(
            path, backend, ctx, hint=self._nearest_hint(float(w1b))
        )
        self.last = d
        if self.fast:
            self._record(float(w1b), decomposition_signature(d), d)
            u1, u2 = endpoint_utilities(
                path, d, (self.v1, self.v2), backend, ctx
            )
            return float(u1 + u2)
        alloc = bd_allocation(path, d, backend, ctx)
        return float(alloc.utilities[self.v1] + alloc.utilities[self.v2])

    def _record(self, x: float, sig: tuple, d) -> None:
        i = bisect.bisect_left(self._xs, x)
        if i < len(self._xs) and self._xs[i] == x:
            return
        self._xs.insert(i, x)
        self._sigs.insert(i, sig)
        self._by_sig[sig] = d

    def _nearest_hint(self, x: float):
        """The recorded solve nearest to ``x`` on the w1 axis, as a warm-
        start hint for a full solve.  Any decomposition of a same-topology
        instance is a *sound* hint (each stage seed ``alpha(H)`` upper-
        bounds that stage's true alpha); the nearest one is simply the most
        likely to share the structure and converge in one iteration.  Falls
        back to the last solve of any kind (audited mode keeps no records).
        """
        if not self._xs:
            return self.last
        i = bisect.bisect_left(self._xs, x)
        if i == 0:
            return self._by_sig[self._sigs[0]]
        if i == len(self._xs) or x - self._xs[i - 1] <= self._xs[i] - x:
            return self._by_sig[self._sigs[i - 1]]
        return self._by_sig[self._sigs[i]]

    def _bracketed_hint(self, x: float):
        """A solved decomposition bracketing ``x``, if the bracket agrees.

        Returns None for an exact repeat of a solved point -- the
        decomposition cache already holds that instance's full solve, so
        re-deriving it would only launder a reconstruction into the
        records' equality path.
        """
        i = bisect.bisect_left(self._xs, x)
        if i < len(self._xs) and self._xs[i] == x:
            return None
        if 0 < i < len(self._xs) and self._sigs[i - 1] == self._sigs[i]:
            return self._by_sig[self._sigs[i - 1]]
        return None


def _subdivision_order(grid: int) -> list[int]:
    """Indices ``0..grid`` in bracket-first order: both endpoints, then
    breadth-first interval midpoints, so each index is visited only after
    two indices surrounding it."""
    order = [0, grid]
    queue = [(0, grid)]
    while queue:
        lo, hi = queue.pop(0)
        if hi - lo < 2:
            continue
        mid = (lo + hi) // 2
        order.append(mid)
        queue.append((lo, mid))
        queue.append((mid, hi))
    return order


def _best_split_search(
    g: WeightedGraph,
    v: int,
    grid: int,
    refine_iters: int,
    backend: Backend,
    ctx: EngineContext,
) -> BestResponse:
    from ..core import bd_allocation

    wv = float(g.weights[v])
    # One truthful solve serves both the Definition 7 denominator and the
    # Lemma 9 honest-split candidate below (it used to be solved twice).
    truthful = bd_allocation(g, backend=backend, ctx=ctx)
    honest = float(truthful.utilities[v])

    if wv == 0:
        return BestResponse(vertex=v, w1=0.0, w2=0.0, utility=0.0, honest_utility=honest)

    evaluator = _SplitEvaluator(g, v, backend, ctx)

    def U(w1: float) -> float:
        w1 = min(max(w1, 0.0), wv)
        # Derive w2 through the backend: under EXACT, Fraction(w1) +
        # Fraction(wv - w1) can miss w_v by an ulp (the float subtraction
        # rounds), and split_ring rightly rejects a split that mints or
        # destroys resource.  w2b = scalar(wv) - scalar(w1) sums exactly by
        # construction and reduces to the old float arithmetic under FLOAT.
        w1b = backend.scalar(w1)
        w2b = backend.scalar(g.weights[v]) - w1b
        return evaluator.utility(w1b, w2b)

    # coarse pass -- evaluated in binary-subdivision order (endpoints
    # first, then recursive midpoints) rather than left to right: every
    # interior candidate is then bracketed by two already-evaluated
    # neighbors, which is exactly what the evaluator's segment-reuse path
    # needs to reconstruct instead of re-solve.  The candidate set and the
    # resulting values are identical either way; only the visit order (and
    # hence the solve/reconstruct split) changes.
    candidates = list(np.linspace(0.0, wv, grid + 1))
    h1, h2 = honest_split_from_allocation(g, v, truthful, backend)
    candidates.append(float(h1))
    values: list[float] = [0.0] * len(candidates)
    for i in _subdivision_order(grid):
        values[i] = U(candidates[i])
    values[grid + 1] = U(candidates[grid + 1])
    order = int(np.argmax(values))
    best_w1, best_val = candidates[order], values[order]

    # golden-section refinement around the best uniform-grid bracket
    step = wv / grid
    lo = max(0.0, best_w1 - step)
    hi = min(wv, best_w1 + step)
    inv_phi = (np.sqrt(5.0) - 1.0) / 2.0
    a, b = lo, hi
    c = b - inv_phi * (b - a)
    d = a + inv_phi * (b - a)
    fc, fd = U(c), U(d)
    for _ in range(refine_iters):
        if fc >= fd:
            b, d, fd = d, c, fc
            c = b - inv_phi * (b - a)
            fc = U(c)
        else:
            a, c, fc = c, d, fd
            d = a + inv_phi * (b - a)
            fd = U(d)
        if b - a < 1e-13 * max(1.0, wv):
            break
    for w1, val in ((c, fc), (d, fd)):
        if val > best_val:
            best_w1, best_val = w1, val

    return BestResponse(
        vertex=v,
        w1=float(best_w1),
        w2=float(wv - best_w1),
        utility=float(best_val),
        honest_utility=honest,
    )


def bd_allocation_utility(
    g: WeightedGraph, v: int, backend: Backend, ctx: EngineContext | None = None
) -> Scalar:
    """Truthful equilibrium utility ``U_v(G; w)`` of Definition 7's
    denominator."""
    from ..core import bd_allocation

    return bd_allocation(g, backend=backend, ctx=ctx).utilities[v]
