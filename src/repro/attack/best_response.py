"""Optimal Sybil weight split ``(w_1^*, w_2^*)`` on a ring.

The attacker maximizes ``U(w_1) = U_{v^1}(w_1) + U_{v^2}(w_v - w_1)`` over
``w_1 in [0, w_v]``.  ``U`` is piecewise smooth: inside an interval where
the path's bottleneck decomposition is combinatorially constant, each term
is either linear (``w * alpha`` with ``alpha`` a ratio of affine functions
of ``w_1``) or hyperbolic (``w / alpha``), so ``U`` is piecewise rational
with finitely many breakpoints.  The optimizer therefore:

1. samples a dense uniform grid (catching every regime of non-trivial
   width),
2. locally refines the best bracket by golden-section search (each regime
   piece is smooth; the refinement converges to the best point of the
   winning piece, including its endpoints, i.e. the breakpoints), and
3. always includes the exact endpoints ``0`` and ``w_v`` and the honest
   split.

An exhaustive-enumeration variant over *exact* rational breakpoints is
provided by :mod:`repro.theory.breakpoints` for small instances; tests
cross-check the two.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine import EngineContext, resolve_context
from ..exceptions import AttackError
from ..graphs import WeightedGraph, require_ring
from ..numeric import Backend, FLOAT, Scalar
from .sybil import attacker_utility, honest_split_from_allocation

__all__ = ["BestResponse", "best_split", "utility_of_split_curve"]


@dataclass(frozen=True)
class BestResponse:
    """Result of the best-response search for one attacker."""

    vertex: int
    w1: float
    w2: float
    utility: float
    honest_utility: float

    @property
    def ratio(self) -> float:
        """``zeta_v`` (Definition 7).  1 when the attacker owns nothing."""
        if self.honest_utility == 0:
            return 1.0
        return self.utility / self.honest_utility


def utility_of_split_curve(
    g: WeightedGraph, v: int, w1s, backend: Backend = FLOAT,
    ctx: EngineContext | None = None,
) -> list[float]:
    """``U(w_1)`` sampled on a grid of ``w_1`` values."""
    wv = float(g.weights[v])
    return [
        float(attacker_utility(g, v, float(w1), wv - float(w1), backend, ctx))
        for w1 in w1s
    ]


def best_split(
    g: WeightedGraph,
    v: int,
    grid: int = 64,
    refine_iters: int = 60,
    backend: Backend = FLOAT,
    ctx: EngineContext | None = None,
) -> BestResponse:
    """Search for ``(w_1^*, w_2^*)`` maximizing the attacker's utility.

    Parameters
    ----------
    grid:
        Number of uniform samples of ``w_1`` (plus endpoints and the honest
        split).  Breakpoint regimes narrower than ``w_v / grid`` can be
        missed by the coarse pass; the golden refinement then recovers the
        optimum only if it lies in the best sampled bracket.  Experiments
        use ``grid >= 64`` which empirically saturates on rings up to
        ``n = 64`` (see EXP-T8 notes in EXPERIMENTS.md).
    refine_iters:
        Golden-section iterations inside the winning bracket (60 iterations
        shrink it by ~1e-12 relative).
    """
    require_ring(g)
    if grid < 2:
        raise AttackError("grid must have at least 2 points")
    ctx = resolve_context(ctx)
    with ctx.counters.timed("best_response"), ctx.span("best_response"):
        result = _best_split_search(g, v, grid, refine_iters, backend, ctx)
    ctx.audit_best_response(g, v, result)
    return result


def _best_split_search(
    g: WeightedGraph,
    v: int,
    grid: int,
    refine_iters: int,
    backend: Backend,
    ctx: EngineContext,
) -> BestResponse:
    from ..core import bd_allocation

    wv = float(g.weights[v])
    # One truthful solve serves both the Definition 7 denominator and the
    # Lemma 9 honest-split candidate below (it used to be solved twice).
    truthful = bd_allocation(g, backend=backend, ctx=ctx)
    honest = float(truthful.utilities[v])

    if wv == 0:
        return BestResponse(vertex=v, w1=0.0, w2=0.0, utility=0.0, honest_utility=honest)

    def U(w1: float) -> float:
        w1 = min(max(w1, 0.0), wv)
        # Derive w2 through the backend: under EXACT, Fraction(w1) +
        # Fraction(wv - w1) can miss w_v by an ulp (the float subtraction
        # rounds), and split_ring rightly rejects a split that mints or
        # destroys resource.  w2b = scalar(wv) - scalar(w1) sums exactly by
        # construction and reduces to the old float arithmetic under FLOAT.
        w1b = backend.scalar(w1)
        w2b = backend.scalar(g.weights[v]) - w1b
        return float(attacker_utility(g, v, w1b, w2b, backend, ctx))

    # coarse pass
    candidates = list(np.linspace(0.0, wv, grid + 1))
    h1, h2 = honest_split_from_allocation(g, v, truthful, backend)
    candidates.append(float(h1))
    values = [U(w1) for w1 in candidates]
    order = int(np.argmax(values))
    best_w1, best_val = candidates[order], values[order]

    # golden-section refinement around the best uniform-grid bracket
    step = wv / grid
    lo = max(0.0, best_w1 - step)
    hi = min(wv, best_w1 + step)
    inv_phi = (np.sqrt(5.0) - 1.0) / 2.0
    a, b = lo, hi
    c = b - inv_phi * (b - a)
    d = a + inv_phi * (b - a)
    fc, fd = U(c), U(d)
    for _ in range(refine_iters):
        if fc >= fd:
            b, d, fd = d, c, fc
            c = b - inv_phi * (b - a)
            fc = U(c)
        else:
            a, c, fc = c, d, fd
            d = a + inv_phi * (b - a)
            fd = U(d)
        if b - a < 1e-13 * max(1.0, wv):
            break
    for w1, val in ((c, fc), (d, fd)):
        if val > best_val:
            best_w1, best_val = w1, val

    return BestResponse(
        vertex=v,
        w1=float(best_w1),
        w2=float(wv - best_w1),
        utility=float(best_val),
        honest_utility=honest,
    )


def bd_allocation_utility(
    g: WeightedGraph, v: int, backend: Backend, ctx: EngineContext | None = None
) -> Scalar:
    """Truthful equilibrium utility ``U_v(G; w)`` of Definition 7's
    denominator."""
    from ..core import bd_allocation

    return bd_allocation(g, backend=backend, ctx=ctx).utilities[v]
