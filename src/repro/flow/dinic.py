"""Dinic's max-flow algorithm (BFS level graph + iterative blocking flow).

This is the library's default solver: ``O(V^2 E)`` in general and
``O(E sqrt(V))`` on the unit-ish bipartite networks that Definition 5 and
the parametric bottleneck cut produce.  It is written iteratively (explicit
stack, ``iter`` pointers) so deep instances never hit the recursion limit,
and generically over the scalar type so the exact backend can decide cuts
with ``Fraction`` arithmetic.
"""

from __future__ import annotations

from collections import deque
from math import isinf

from ..exceptions import FlowError
from .network import FlowNetwork

__all__ = ["dinic_max_flow"]


def dinic_max_flow(net: FlowNetwork, s: int, t: int, zero_tol: float = 0.0):
    """Run Dinic's algorithm; returns the max-flow value.

    Parameters
    ----------
    net:
        Network with residual state (flow accumulates on top of whatever is
        already routed; call ``net.reset()`` first for a fresh solve).
    s, t:
        Source and sink ids.
    zero_tol:
        Residual capacities ``<= zero_tol`` are treated as saturated.  Pass
        0 with exact (Fraction) capacities.
    """
    if s == t:
        raise FlowError("source and sink must differ")
    n = net.n
    cap = net.cap
    head = net.head
    adj = net.adj
    total = None  # lazily typed from the first augmentation

    level = [0] * n
    it = [0] * n

    def bfs() -> bool:
        for i in range(n):
            level[i] = -1
        level[s] = 0
        q = deque([s])
        while q:
            u = q.popleft()
            for arc in adj[u]:
                v = head[arc]
                if level[v] == -1 and cap[arc] > zero_tol:
                    level[v] = level[u] + 1
                    q.append(v)
        return level[t] != -1

    def dfs_blocking():
        """Send one augmenting path along the level graph; returns amount
        pushed (or None when the level graph is exhausted)."""
        path: list[int] = []
        u = s
        while True:
            if u == t:
                bottleneck = min(cap[a] for a in path)
                # inlined net.push: infinite residuals stay infinite, the
                # paired reverse arc always gains (same rule, no dispatch)
                for a in path:
                    c = cap[a]
                    if not (isinstance(c, float) and isinf(c)):
                        cap[a] = c - bottleneck
                    cap[a ^ 1] = cap[a ^ 1] + bottleneck
                return bottleneck
            advanced = False
            adj_u = adj[u]
            next_level = level[u] + 1
            i = it[u]
            while i < len(adj_u):
                arc = adj_u[i]
                v = head[arc]
                if cap[arc] > zero_tol and level[v] == next_level:
                    it[u] = i
                    path.append(arc)
                    u = v
                    advanced = True
                    break
                i += 1
            if advanced:
                continue
            it[u] = i
            # dead end: retreat
            level[u] = -1
            if u == s:
                return None
            arc = path.pop()
            u = head[arc ^ 1]

    while bfs():
        for i in range(n):
            it[i] = 0
        while True:
            pushed = dfs_blocking()
            if pushed is None:
                break
            total = pushed if total is None else total + pushed

    if total is None:
        # zero max flow; produce a zero of the capacity scalar type if any
        for c in net.orig_cap:
            try:
                return c - c
            except TypeError:  # pragma: no cover - inf-only networks
                return 0.0
        return 0
    return total


def _tail(net: FlowNetwork, arc: int) -> int:
    """Tail of an arc = head of its paired reverse arc."""
    return net.head[arc ^ 1]
