"""FIFO push-relabel max flow with the gap heuristic.

Third independent max-flow implementation (see :mod:`.edmonds_karp` for the
cross-checking rationale).  Push-relabel maintains a preflow, so unlike the
augmenting-path solvers it never constructs s-t paths; agreement between the
three is therefore a strong implementation check.

The returned *value* is the max flow.  The residual state left in ``net`` is
a maximum preflow whose excess has (in normal runs) drained back to the
source, but callers that need per-arc flows should use Dinic or
Edmonds-Karp; this solver is a value oracle.

``math.inf`` capacities are supported (excess bookkeeping only ever adds
finite amounts because source arcs are finite in every network this library
builds; a fully-infinite source arc would make the problem unbounded and is
rejected up front).
"""

from __future__ import annotations

import math
from collections import deque

from ..exceptions import FlowError
from .network import FlowNetwork

__all__ = ["push_relabel_max_flow"]


def push_relabel_max_flow(net: FlowNetwork, s: int, t: int, zero_tol: float = 0.0):
    """FIFO push-relabel; returns the max-flow value."""
    if s == t:
        raise FlowError("source and sink must differ")
    n = net.n
    cap = net.cap
    head = net.head
    adj = net.adj

    for arc in adj[s]:
        if isinstance(cap[arc], float) and math.isinf(cap[arc]):
            raise FlowError("infinite capacity out of the source: flow unbounded")

    height = [0] * n
    height[s] = n
    excess: list = [0] * n
    count = [0] * (2 * n + 1)  # height histogram for the gap heuristic
    count[0] = n - 1
    count[n] = 1

    active: deque[int] = deque()

    # saturate source arcs
    for arc in list(adj[s]):
        amount = cap[arc]
        if amount > zero_tol:
            net.push(arc, amount)
            v = head[arc]
            excess[v] = excess[v] + amount
            if v != t and v != s:
                active.append(v)

    it = [0] * n

    def relabel(u: int) -> None:
        old = height[u]
        min_h = 2 * n
        for arc in adj[u]:
            if cap[arc] > zero_tol:
                h = height[head[arc]]
                if h < min_h:
                    min_h = h
        new_h = min_h + 1 if min_h < 2 * n else 2 * n
        count[old] -= 1
        # gap heuristic: if no node remains at `old` and old < n, every node
        # above the gap (and below n) can never reach t again -> lift to n+1
        if count[old] == 0 and 0 < old < n:
            for v in range(n):
                if old < height[v] < n and v != s:
                    count[height[v]] -= 1
                    height[v] = n + 1
                    count[n + 1] += 1
        height[u] = new_h
        count[new_h] += 1
        it[u] = 0

    while active:
        u = active.popleft()
        if u == s or u == t:
            continue
        while excess[u] > zero_tol:
            if it[u] >= len(adj[u]):
                relabel(u)
                if height[u] >= 2 * n:
                    break
                continue
            arc = adj[u][it[u]]
            v = head[arc]
            if cap[arc] > zero_tol and height[u] == height[v] + 1:
                c = cap[arc]
                amount = excess[u] if (isinstance(c, float) and math.isinf(c)) or excess[u] < c else c
                net.push(arc, amount)
                excess[u] = excess[u] - amount
                was_inactive = not (excess[v] > zero_tol)
                excess[v] = excess[v] + amount
                if was_inactive and v != s and v != t:
                    active.append(v)
            else:
                it[u] += 1
        # nodes lifted above 2n hold trapped excess that returns to s; done.

    # max flow value = excess accumulated at t
    value = excess[t]
    if value == 0:
        for c in net.orig_cap:
            try:
                return c - c
            except TypeError:  # pragma: no cover
                return 0.0
    return value
