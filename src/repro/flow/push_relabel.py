"""FIFO push-relabel max flow with the gap heuristic.

Third independent max-flow implementation (see :mod:`.edmonds_karp` for the
cross-checking rationale).  Push-relabel maintains a preflow, so unlike the
augmenting-path solvers it never constructs s-t paths; agreement between the
three is therefore a strong implementation check.

The returned *value* is the max flow.  The residual state left in ``net`` is
a maximum preflow whose excess has (in normal runs) drained back to the
source, but callers that need per-arc flows should use Dinic or
Edmonds-Karp; this solver is a value oracle (plus a min-cut oracle: the
residual coreachable set of ``t`` is cut-exact, see below).

Unlike the augmenting-path solvers -- which saturate each bottleneck arc
with a single exact ``c - c`` subtraction -- push-relabel accumulates an
arc's flow over many pushes, so a saturated arc can be left with a few ulps
of residual.  At the library's load-bearing ``zero_tol=0.0`` such dust reads
as a traversable arc and corrupts min-cut extraction, so a final cleanup
pass snaps float residuals within a hair of saturation back to exactly
zero (scaled per arc; ``Fraction`` capacities are never touched).

``math.inf`` capacities are supported (excess bookkeeping only ever adds
finite amounts because source arcs are finite in every network this library
builds; a fully-infinite source arc would make the problem unbounded and is
rejected up front).
"""

from __future__ import annotations

import math
from collections import deque

from ..exceptions import FlowError
from .network import FlowNetwork

__all__ = ["push_relabel_max_flow"]


def push_relabel_max_flow(net: FlowNetwork, s: int, t: int, zero_tol: float = 0.0):
    """FIFO push-relabel; returns the max-flow value."""
    if s == t:
        raise FlowError("source and sink must differ")
    n = net.n
    cap = net.cap
    head = net.head
    adj = net.adj

    for arc in adj[s]:
        if isinstance(cap[arc], float) and math.isinf(cap[arc]):
            raise FlowError("infinite capacity out of the source: flow unbounded")

    height = [0] * n
    height[s] = n
    excess: list = [0] * n
    count = [0] * (2 * n + 1)  # height histogram for the gap heuristic
    count[0] = n - 1
    count[n] = 1

    active: deque[int] = deque()

    # saturate source arcs
    for arc in list(adj[s]):
        amount = cap[arc]
        if amount > zero_tol:
            net.push(arc, amount)
            v = head[arc]
            excess[v] = excess[v] + amount
            if v != t and v != s:
                active.append(v)

    it = [0] * n

    def relabel(u: int) -> None:
        old = height[u]
        min_h = 2 * n
        for arc in adj[u]:
            if cap[arc] > zero_tol:
                h = height[head[arc]]
                if h < min_h:
                    min_h = h
        new_h = min_h + 1 if min_h < 2 * n else 2 * n
        count[old] -= 1
        # gap heuristic: if no node remains at `old` and old < n, every node
        # above the gap (and below n) can never reach t again -> lift to n+1
        if count[old] == 0 and 0 < old < n:
            for v in range(n):
                if old < height[v] < n and v != s:
                    count[height[v]] -= 1
                    height[v] = n + 1
                    count[n + 1] += 1
        height[u] = new_h
        count[new_h] += 1
        it[u] = 0

    while active:
        u = active.popleft()
        if u == s or u == t:
            continue
        while excess[u] > zero_tol:
            if it[u] >= len(adj[u]):
                relabel(u)
                if height[u] >= 2 * n:
                    break
                continue
            arc = adj[u][it[u]]
            v = head[arc]
            if cap[arc] > zero_tol and height[u] == height[v] + 1:
                c = cap[arc]
                amount = excess[u] if (isinstance(c, float) and math.isinf(c)) or excess[u] < c else c
                net.push(arc, amount)
                excess[u] = excess[u] - amount
                was_inactive = not (excess[v] > zero_tol)
                excess[v] = excess[v] + amount
                if was_inactive and v != s and v != t:
                    active.append(v)
            else:
                it[u] += 1
        # nodes lifted above 2n hold trapped excess that returns to s; done.

    _snap_saturated(net)

    # max flow value = excess accumulated at t
    value = excess[t]
    if value == 0:
        for c in net.orig_cap:
            try:
                return c - c
            except TypeError:  # pragma: no cover
                return 0.0
    return value


#: Residuals below this multiple of the arc's own capacity are rounding
#: noise from accumulated pushes, not genuine slack (a ulp is ~2.2e-16; a
#: few dozen pushes per arc keeps the error well under 64 ulps).
_SNAP_ULPS = 64.0 * 2.0 ** -52


def _snap_saturated(net: FlowNetwork) -> None:
    """Zero float residuals that are saturation up to accumulated rounding.

    Works per arc pair and conserves the pair total, so ``flow_on`` stays
    consistent.  Infinite and ``Fraction`` capacities are left alone: inf
    arcs have no meaningful scale and exact arithmetic has no dust.
    """
    cap = net.cap
    orig = net.orig_cap
    for a in range(0, net.num_arcs, 2):
        oc = orig[a]
        if not isinstance(oc, float) or math.isinf(oc) or oc <= 0.0:
            continue
        tiny = _SNAP_ULPS * oc
        for b in (a, a ^ 1):
            c = cap[b]
            if isinstance(c, float) and 0.0 < c <= tiny:
                cap[b ^ 1] = cap[b ^ 1] + c
                cap[b] = 0.0
