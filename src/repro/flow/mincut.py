"""Min-cut extraction from a solved max-flow network.

Two cuts matter for the parametric bottleneck machinery:

* the **minimal** source side -- vertices reachable from ``s`` in the
  residual network (the canonical min cut), and
* the **maximal** source side -- the complement of the set of vertices that
  can *reach* ``t`` in the residual network.

Min cuts form a lattice; every min cut's source side lies between these two.
Definition 2 asks for the *maximal* bottleneck, which corresponds to the
maximal min cut of the parametric network (see ``core.bottleneck``), so both
directions are implemented.
"""

from __future__ import annotations

from collections import deque

from .network import FlowNetwork

__all__ = ["min_source_side", "max_source_side", "cut_value"]


def min_source_side(net: FlowNetwork, s: int, zero_tol: float = 0.0) -> frozenset[int]:
    """Vertices reachable from ``s`` along positive-residual arcs."""
    seen = [False] * net.n
    seen[s] = True
    q = deque([s])
    cap = net.cap
    head = net.head
    adj = net.adj
    while q:
        u = q.popleft()
        for arc in adj[u]:
            v = head[arc]
            if not seen[v] and cap[arc] > zero_tol:
                seen[v] = True
                q.append(v)
    return frozenset(i for i in range(net.n) if seen[i])


def max_source_side(net: FlowNetwork, t: int, zero_tol: float = 0.0) -> frozenset[int]:
    """Complement of the vertices that can reach ``t`` on positive residuals.

    Implemented as a reverse BFS from ``t``: vertex ``u`` reaches ``t`` iff
    some arc ``u -> v`` with positive residual has ``v`` reaching ``t``.
    Walking reverse arcs: for each arc ``a`` into the current vertex, its
    pair ``a ^ 1`` points back to the tail, and the tail reaches ``t``
    through arc ``a ^ 1``'s pair... concretely, tail ``u`` of arc ``a``
    (``a`` even or odd) reaches ``t`` via ``a`` iff ``cap[a] > 0``.  We scan
    arcs incident *to* the frontier vertex ``v``: every arc ``b`` in
    ``adj[v]`` has a pair ``b ^ 1`` from ``head[b]`` to ``v``; the tail
    ``head[b]`` reaches ``v`` iff ``cap[b ^ 1] > 0``.
    """
    reaches = [False] * net.n
    reaches[t] = True
    q = deque([t])
    cap = net.cap
    head = net.head
    adj = net.adj
    while q:
        v = q.popleft()
        for b in adj[v]:
            u = head[b]  # candidate tail of an arc u -> v (the pair of b)
            if not reaches[u] and cap[b ^ 1] > zero_tol:
                reaches[u] = True
                q.append(u)
    return frozenset(i for i in range(net.n) if not reaches[i])


def cut_value(net: FlowNetwork, source_side: frozenset[int]):
    """Capacity of the cut induced by ``source_side`` (original capacities).

    Returns the sum of ``orig_cap`` over forward arcs leaving the source
    side.  Used by tests to confirm max-flow == min-cut on both extracted
    cuts.
    """
    total = None
    for arc in range(0, net.num_arcs, 2):
        u = net.head[arc ^ 1]
        v = net.head[arc]
        if u in source_side and v not in source_side:
            c = net.orig_cap[arc]
            total = c if total is None else total + c
    if total is None:
        for c in net.orig_cap:
            try:
                return c - c
            except TypeError:  # pragma: no cover
                return 0.0
        return 0
    return total
