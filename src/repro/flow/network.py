"""Residual flow network shared by all three max-flow algorithms.

Arcs are stored in flat parallel lists with the classic xor-pairing trick
(arc ``i`` and its reverse ``i ^ 1`` are adjacent), so the augmenting /
pushing loops touch contiguous small lists instead of nested dicts -- the
cheapest representation available in pure Python, per the HPC guides'
"vectorize or at least flatten your hot loops" advice.

Capacities are *generic scalars*: the exact backend feeds ``Fraction``
capacities (the parametric bottleneck cut must be decided exactly), the
float backend feeds ``float`` (including ``math.inf`` for the "infinite"
bipartite arcs of Definition 5).  All algorithms take a ``zero_tol`` so that
float residuals below tolerance count as saturated.
"""

from __future__ import annotations

import math
from typing import Iterator

from ..exceptions import FlowError, NumericalInstabilityError

__all__ = ["FlowNetwork"]


class FlowNetwork:
    """Directed capacitated network with residual bookkeeping.

    Parameters
    ----------
    n:
        Number of nodes, ids ``0..n-1``.

    Notes
    -----
    ``add_edge(u, v, cap)`` creates the forward arc and a 0-capacity reverse
    arc.  Flow on arc ``i`` is recovered as the capacity currently sitting
    on its reverse arc ``i ^ 1`` minus that arc's original capacity; we store
    original capacities to report flows exactly.
    """

    __slots__ = ("n", "head", "cap", "orig_cap", "adj")

    def __init__(self, n: int) -> None:
        if n < 2:
            raise FlowError("a flow network needs at least a source and a sink")
        self.n = n
        self.head: list[int] = []      # arc i points to head[i]
        self.cap: list = []            # residual capacity of arc i
        self.orig_cap: list = []       # capacity at construction time
        self.adj: list[list[int]] = [[] for _ in range(n)]

    def add_edge(self, u: int, v: int, cap) -> int:
        """Add arc ``u -> v`` with the given capacity; returns the arc id."""
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise FlowError(f"arc ({u},{v}) out of range for n={self.n}")
        if u == v:
            raise FlowError("self-loop arcs are not allowed")
        try:
            negative = cap < 0
        except TypeError as exc:
            raise FlowError(f"capacity {cap!r} is not comparable") from exc
        if negative:
            raise FlowError(f"negative capacity {cap!r} on arc ({u},{v})")
        # NaN compares False against everything, so it sails past the
        # negativity check and then poisons every residual comparison the
        # solvers make (``+inf`` stays legal: Definition 5's bipartite arcs
        # are genuinely unbounded).  A NaN here means upstream float
        # arithmetic overflowed -- untrusted input is already screened by
        # repro.guard -- so raise the retryable instability error and let
        # the supervisor escalate the cell to the exact backend.
        if isinstance(cap, float) and math.isnan(cap):
            raise NumericalInstabilityError(
                f"NaN capacity on arc ({u},{v}); upstream arithmetic lost "
                f"the value"
            )
        arc = len(self.head)
        self.head.append(v)
        self.cap.append(cap)
        self.orig_cap.append(cap)
        self.adj[u].append(arc)
        # reverse arc with zero capacity of the *same scalar type*
        zero = cap - cap if not _is_inf(cap) else 0.0
        self.head.append(u)
        self.cap.append(zero)
        self.orig_cap.append(zero)
        self.adj[v].append(arc + 1)
        return arc

    # ------------------------------------------------------------------
    def flow_on(self, arc: int):
        """Flow currently routed through forward arc ``arc``."""
        if arc % 2 != 0:
            raise FlowError("flow_on expects a forward (even) arc id")
        rev = arc ^ 1
        return self.cap[rev] - self.orig_cap[rev]

    def residual(self, arc: int):
        return self.cap[arc]

    def arcs_from(self, u: int) -> Iterator[int]:
        return iter(self.adj[u])

    def push(self, arc: int, amount) -> None:
        """Route ``amount`` along ``arc`` (residuals updated both ways)."""
        if not _is_inf(self.cap[arc]):
            self.cap[arc] = self.cap[arc] - amount
        self.cap[arc ^ 1] = self.cap[arc ^ 1] + amount

    def reset(self) -> None:
        """Drop all routed flow, restoring construction-time capacities."""
        self.cap = list(self.orig_cap)

    def clone(self) -> "FlowNetwork":
        """Deep copy (used when one network must be solved at many lambdas)."""
        out = FlowNetwork.__new__(FlowNetwork)
        out.n = self.n
        out.head = list(self.head)
        out.cap = list(self.cap)
        out.orig_cap = list(self.orig_cap)
        out.adj = [list(a) for a in self.adj]
        return out

    @property
    def num_arcs(self) -> int:
        return len(self.head)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlowNetwork(n={self.n}, arcs={self.num_arcs // 2})"


def _is_inf(x) -> bool:
    return isinstance(x, float) and math.isinf(x)
