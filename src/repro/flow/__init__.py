"""Max-flow substrate: residual network plus three independent solvers."""

from .network import FlowNetwork
from .dinic import dinic_max_flow
from .edmonds_karp import edmonds_karp_max_flow
from .push_relabel import push_relabel_max_flow
from .mincut import min_source_side, max_source_side, cut_value
from .template import (
    FlowTemplate,
    network_from_arrays,
    network_to_arrays,
    pair_template,
    parametric_template,
)
from .verify import assert_valid_flow, node_inflow, node_outflow

__all__ = [
    "FlowNetwork",
    "FlowTemplate",
    "network_from_arrays",
    "network_to_arrays",
    "pair_template",
    "parametric_template",
    "dinic_max_flow",
    "edmonds_karp_max_flow",
    "push_relabel_max_flow",
    "min_source_side",
    "max_source_side",
    "cut_value",
    "assert_valid_flow",
    "node_inflow",
    "node_outflow",
]
