"""Flow verification utilities (used by tests and by the BD allocation).

A solved network is checked for the three flow axioms: capacity respect,
skew-symmetric residual consistency (implied by the arc pairing), and
conservation at every non-terminal node.
"""

from __future__ import annotations

import math

from ..exceptions import FlowError
from .network import FlowNetwork

__all__ = ["assert_valid_flow", "node_outflow", "node_inflow"]


def node_outflow(net: FlowNetwork, u: int):
    """Total flow leaving ``u`` on forward arcs."""
    total = 0
    for arc in net.adj[u]:
        if arc % 2 == 0:
            total = total + net.flow_on(arc)
    return total


def node_inflow(net: FlowNetwork, u: int):
    """Total flow entering ``u`` on forward arcs."""
    total = 0
    for arc in net.adj[u]:
        if arc % 2 == 1:  # pair of a forward arc ending at u
            total = total + net.flow_on(arc ^ 1)
    return total


def assert_valid_flow(net: FlowNetwork, s: int, t: int, tol: float = 0.0) -> None:
    """Raise :class:`FlowError` unless the routed flow is feasible.

    ``tol`` absorbs float round-off; pass 0 for exact capacities.
    """
    # NOTE: tol is only mixed into comparisons when non-zero -- adding a
    # float 0.0 to a Fraction would coerce to float and break exactness.
    for arc in range(0, net.num_arcs, 2):
        f = net.flow_on(arc)
        if (f < -tol) if tol else (f < 0):
            raise FlowError(f"negative flow {f!r} on arc {arc}")
        c = net.orig_cap[arc]
        if isinstance(c, float) and math.isinf(c):
            continue
        if (f > c + tol) if tol else (f > c):
            raise FlowError(f"flow {f!r} exceeds capacity {c!r} on arc {arc}")
    for u in range(net.n):
        if u in (s, t):
            continue
        imbalance = node_inflow(net, u) - node_outflow(net, u)
        if (abs(imbalance) > tol) if tol else (imbalance != 0):
            raise FlowError(f"conservation violated at node {u}: {imbalance!r}")
