"""Reusable flow-network templates and flat-array views.

The Dinkelbach loop solves hundreds of parametric networks that all share
one arc structure -- only capacities change with ``lambda`` -- and a
best-response sweep rebuilds the *same* pair networks for every candidate
split.  Building those through :meth:`FlowNetwork.add_edge` re-runs range /
sign / NaN validation per arc and re-grows the adjacency lists each time.

A :class:`FlowTemplate` freezes the arc structure once (``head`` and ``adj``
are built exactly as the ``add_edge`` sequence would have built them, and
are *shared read-only* across instantiations -- the solvers only ever
mutate ``cap``) plus a capacity *plan*: per forward arc, whether its
capacity comes from the first vector (``KIND_A``), the second vector
(``KIND_B``), or is the "infinite" cap (``KIND_INF``).  Instantiating for a
given capacity assignment is then a single append loop with no validation,
which is safe because templates are only built from already-validated
:class:`~repro.graphs.WeightedGraph` structures.

Capacity semantics are chosen by the caller, which is what lets one class
serve both network shapes in :mod:`repro.core`:

* parametric bottleneck network: ``A = lambda * w``, ``B = w``;
* allocation pair network: ``A = source-side weights``, ``B = sink caps``.

The module also provides the flat-array (numpy) view of a float
:class:`FlowNetwork` -- ``head``/``cap``/``orig_cap`` columns plus a CSR
``indptr``/``arcs`` adjacency -- round-tripping exactly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import FlowError
from .network import FlowNetwork

__all__ = [
    "FlowTemplate",
    "KIND_A",
    "KIND_B",
    "KIND_INF",
    "parametric_template",
    "pair_template",
    "network_to_arrays",
    "network_from_arrays",
]

KIND_A = 0    # capacity = avals[idx]
KIND_B = 1    # capacity = bvals[idx]
KIND_INF = 2  # capacity = inf_cap


class FlowTemplate:
    """Frozen arc structure + capacity plan for one network topology."""

    __slots__ = ("n", "head", "adj", "kinds", "idxs")

    def __init__(self, n: int, head: list[int], adj: list[list[int]],
                 kinds: list[int], idxs: list[int]) -> None:
        if n < 2:
            raise FlowError("a flow network needs at least a source and a sink")
        self.n = n
        self.head = head
        self.adj = adj
        self.kinds = kinds
        self.idxs = idxs

    @property
    def num_arcs(self) -> int:
        return len(self.head)

    def instantiate(self, avals: Sequence, bvals: Sequence, inf_cap, zero) -> FlowNetwork:
        """Materialize a solvable :class:`FlowNetwork` for one capacity set.

        ``zero`` must be the backend's zero of the same scalar type as the
        capacities (``0.0`` float / ``Fraction(0)`` exact) -- the same value
        ``add_edge`` would have derived for each reverse arc, so solver
        arithmetic stays bit-identical to a classically built network.
        ``head``/``adj`` are shared with the template (never mutated by the
        solvers); ``cap``/``orig_cap`` are fresh per instance.
        """
        cap: list = []
        append = cap.append
        for kind, ix in zip(self.kinds, self.idxs):
            if kind == KIND_A:
                append(avals[ix])
            elif kind == KIND_B:
                append(bvals[ix])
            else:
                append(inf_cap)
            append(zero)
        net = FlowNetwork.__new__(FlowNetwork)
        net.n = self.n
        net.head = self.head
        net.adj = self.adj
        net.cap = cap
        net.orig_cap = list(cap)
        return net


def _builder(n: int):
    head: list[int] = []
    adj: list[list[int]] = [[] for _ in range(n)]
    kinds: list[int] = []
    idxs: list[int] = []

    def add(u: int, v: int, kind: int, ix: int) -> None:
        arc = len(head)
        head.append(v)
        head.append(u)
        adj[u].append(arc)
        adj[v].append(arc + 1)
        kinds.append(kind)
        idxs.append(ix)

    return head, adj, kinds, idxs, add


def parametric_template(g, active: Sequence[int]) -> FlowTemplate:
    """Template matching ``core.bottleneck.parametric_network`` arc-for-arc.

    ``active`` must be the sorted active-vertex list the caller will use as
    ``verts``.  Instantiate with ``avals = [lam * w_i]`` (source arcs) and
    ``bvals = [w_i]`` (sink arcs); middle bipartite arcs are ``KIND_INF``.
    """
    verts = list(active)
    nh = len(verts)
    pos = {v: i for i, v in enumerate(verts)}
    active_set = set(verts)
    head, adj, kinds, idxs, add = _builder(2 + 2 * nh)
    for i, v in enumerate(verts):
        add(0, 2 + i, KIND_A, i)
        add(2 + nh + i, 1, KIND_B, i)
        for u in g.neighbors(v):
            if u in active_set:
                add(2 + i, 2 + nh + pos[u], KIND_INF, 0)
    return FlowTemplate(2 + 2 * nh, head, adj, kinds, idxs)


def pair_template(g, B: Sequence[int], C: Sequence[int]):
    """Template + arc map matching ``core.allocation._pair_network``.

    ``B``/``C`` must be the exact (sorted) member lists the classic builder
    receives.  Instantiate with ``avals = [w_u for u in B]`` and
    ``bvals = sink_caps``.  Returns ``(template, arc_of)`` where ``arc_of``
    maps ``(u, v)`` resource edges to forward arc ids; the dict is shared
    read-only across instantiations.
    """
    B = list(B)
    C = list(C)
    nb, nc = len(B), len(C)
    bpos = {u: i for i, u in enumerate(B)}
    cpos = {v: j for j, v in enumerate(C)}
    head, adj, kinds, idxs, add = _builder(2 + nb + nc)
    for i, _u in enumerate(B):
        add(0, 2 + i, KIND_A, i)
    for j, _v in enumerate(C):
        add(2 + nb + j, 1, KIND_B, j)
    arc_of: dict[tuple[int, int], int] = {}
    for u in B:
        for v in g.neighbors(u):
            if v in cpos and v != u:
                arc_of[(u, v)] = len(head)
                add(2 + bpos[u], 2 + nb + cpos[v], KIND_INF, 0)
    return FlowTemplate(2 + nb + nc, head, adj, kinds, idxs), arc_of


# ----------------------------------------------------------------------
# flat-array (numpy) view of a float network
# ----------------------------------------------------------------------
def network_to_arrays(net: FlowNetwork) -> dict[str, np.ndarray]:
    """Columnar snapshot of a float-capacity network.

    Exact (``Fraction``) networks are refused rather than silently rounded:
    the flat view exists for numeric tooling (serialization, vectorized
    inspection), and the exact backend must never lose bits on the way
    through numpy.  ``math.inf`` survives the ``float64`` round-trip.
    """
    for c in net.cap:
        if not isinstance(c, (int, float)):
            raise FlowError(
                f"flat-array view requires float capacities, got {type(c).__name__}")
    counts = np.fromiter((len(a) for a in net.adj), dtype=np.int64, count=net.n)
    indptr = np.zeros(net.n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    arcs = np.fromiter(
        (arc for a in net.adj for arc in a), dtype=np.int64, count=int(indptr[-1]))
    return {
        "n": np.int64(net.n),
        "head": np.asarray(net.head, dtype=np.int64),
        "cap": np.asarray([float(c) for c in net.cap], dtype=np.float64),
        "orig_cap": np.asarray([float(c) for c in net.orig_cap], dtype=np.float64),
        "adj_indptr": indptr,
        "adj_arcs": arcs,
    }


def network_from_arrays(arrays: dict[str, np.ndarray]) -> FlowNetwork:
    """Rebuild a :class:`FlowNetwork` from :func:`network_to_arrays` output."""
    n = int(arrays["n"])
    indptr = arrays["adj_indptr"]
    arcs = arrays["adj_arcs"]
    net = FlowNetwork.__new__(FlowNetwork)
    net.n = n
    net.head = [int(x) for x in arrays["head"]]
    net.cap = [float(x) for x in arrays["cap"]]
    net.orig_cap = [float(x) for x in arrays["orig_cap"]]
    net.adj = [
        [int(arcs[j]) for j in range(int(indptr[u]), int(indptr[u + 1]))]
        for u in range(n)
    ]
    return net
