"""Edmonds-Karp max flow (shortest augmenting paths).

Slower than Dinic (``O(V E^2)``) but much simpler; it exists as an
independent implementation for cross-checking: the test suite solves the
same networks with Dinic, Edmonds-Karp, push-relabel, and networkx and
requires identical values.
"""

from __future__ import annotations

from collections import deque

from ..exceptions import FlowError
from .network import FlowNetwork

__all__ = ["edmonds_karp_max_flow"]


def edmonds_karp_max_flow(net: FlowNetwork, s: int, t: int, zero_tol: float = 0.0):
    """BFS augmenting-path max flow; returns the flow value."""
    if s == t:
        raise FlowError("source and sink must differ")
    n = net.n
    cap = net.cap
    head = net.head
    adj = net.adj
    total = None

    parent_arc = [-1] * n

    while True:
        for i in range(n):
            parent_arc[i] = -1
        parent_arc[s] = -2
        q = deque([s])
        reached = False
        while q and not reached:
            u = q.popleft()
            for arc in adj[u]:
                v = head[arc]
                if parent_arc[v] == -1 and cap[arc] > zero_tol:
                    parent_arc[v] = arc
                    if v == t:
                        reached = True
                        break
                    q.append(v)
        if not reached:
            break
        # walk back to find the bottleneck, then push
        bottleneck = None
        v = t
        while v != s:
            arc = parent_arc[v]
            c = cap[arc]
            bottleneck = c if bottleneck is None or c < bottleneck else bottleneck
            v = head[arc ^ 1]
        v = t
        while v != s:
            arc = parent_arc[v]
            net.push(arc, bottleneck)
            v = head[arc ^ 1]
        total = bottleneck if total is None else total + bottleneck

    if total is None:
        for c in net.orig_cap:
            try:
                return c - c
            except TypeError:  # pragma: no cover
                return 0.0
        return 0
    return total
