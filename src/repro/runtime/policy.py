"""Runtime supervision policy: the knobs of fault-tolerant execution.

One frozen :class:`RuntimePolicy` travels from the CLI (``--timeout``,
``--retries``, ``--checkpoint``, ``--inject-faults``) onto the
:class:`~repro.engine.EngineContext` (its loosely-typed ``runtime`` field)
and down into :func:`repro.runtime.supervised_map` and the sweep layer.
The default policy is deliberately inert -- no timeout, no retries, no
checkpoint, no faults -- so call sites that never configure one keep the
pre-supervision behavior bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..exceptions import EngineError

__all__ = ["RuntimePolicy", "resolve_policy", "START_METHODS"]

#: Multiprocessing start methods the supervisor accepts.  ``fork`` is the
#: historical (and fastest) default on Linux; ``spawn`` is the portable
#: choice and the only one available everywhere.
START_METHODS = ("fork", "spawn", "forkserver")


@dataclass(frozen=True)
class RuntimePolicy:
    """Configuration of the supervised execution layer.

    Parameters
    ----------
    timeout:
        Per-cell wall-clock budget in seconds; a worker that exceeds it is
        killed and the cell retried.  ``None`` disables timeouts.
    retries:
        How many times a retryable cell failure is re-run before the
        supervisor gives up (escalating numeric failures to the exact
        backend first, see ``escalate``).
    backoff_base / backoff_cap:
        Capped exponential backoff between retries of the same cell:
        attempt ``k`` waits ``min(cap, base * 2**(k-1))`` seconds.
    start_method:
        Explicit multiprocessing start method (satellite of the historical
        ``parallel_map`` docstring/behavior mismatch: the method is now
        named, validated, and configurable rather than silently ``fork``).
    poll_interval:
        Supervisor result-queue poll period; also bounds how stale a
        timeout detection can be.
    escalate:
        When True, a cell whose failure is escalatable (non-convergence,
        NaN/Inf instability, audit violation) and whose retries are
        exhausted is re-run once under the exact ``Fraction`` backend.
    checkpoint:
        Path of the append-only resume journal (``None`` = no journal).
    faults:
        Deterministic fault-injection spec string (see
        :mod:`repro.runtime.faults`); ``None`` = no injection.
    max_pool_failures:
        Consecutive worker deaths without a single completed cell before
        the supervisor declares the pool unrecoverable and degrades to
        serial in-process execution.
    max_memory_mb:
        Per-worker address-space envelope (``RLIMIT_AS``), in MiB.  A cell
        that balloons past it gets a typed, retryable
        :class:`~repro.exceptions.ResourceExhaustedError` from the worker
        instead of OOM-killing the pool.  ``None`` disables the envelope.
    max_cpu_seconds:
        Per-worker CPU-time envelope (``RLIMIT_CPU``), in seconds of CPU
        time (distinct from the wall-clock ``timeout``).  The kernel kills
        a worker that exceeds it; the supervisor requeues its cell through
        the crash/retry path.  ``None`` disables the envelope.
    max_bruteforce_n:
        Size cap for the exponential brute-force oracles, installed in
        each worker (and around guarded serial cells); instances above it
        raise :class:`~repro.exceptions.ResourceExhaustedError` before a
        ``2^n`` enumeration starts.  ``None`` keeps the library default.
    """

    timeout: Optional[float] = None
    retries: int = 0
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    start_method: str = "fork"
    poll_interval: float = 0.02
    escalate: bool = True
    checkpoint: Optional[str] = None
    faults: Optional[str] = None
    max_pool_failures: int = 3
    max_memory_mb: Optional[float] = None
    max_cpu_seconds: Optional[float] = None
    max_bruteforce_n: Optional[int] = None

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise EngineError(f"timeout must be positive, got {self.timeout}")
        if self.retries < 0:
            raise EngineError(f"retries must be >= 0, got {self.retries}")
        if self.start_method not in START_METHODS:
            raise EngineError(
                f"start_method must be one of {START_METHODS}, got {self.start_method!r}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise EngineError("backoff parameters must be non-negative")
        if self.poll_interval <= 0:
            raise EngineError("poll_interval must be positive")
        if self.max_pool_failures < 1:
            raise EngineError("max_pool_failures must be >= 1")
        if self.max_memory_mb is not None and self.max_memory_mb <= 0:
            raise EngineError(
                f"max_memory_mb must be positive, got {self.max_memory_mb}")
        if self.max_cpu_seconds is not None and self.max_cpu_seconds <= 0:
            raise EngineError(
                f"max_cpu_seconds must be positive, got {self.max_cpu_seconds}")
        if self.max_bruteforce_n is not None and self.max_bruteforce_n < 1:
            raise EngineError(
                f"max_bruteforce_n must be >= 1, got {self.max_bruteforce_n}")

    @property
    def supervised(self) -> bool:
        """True when any knob differs from the inert default, i.e. cells
        must route through the supervisor rather than the legacy paths."""
        return (
            self.timeout is not None
            or self.retries > 0
            or self.checkpoint is not None
            or self.faults is not None
            or self.max_memory_mb is not None
            or self.max_cpu_seconds is not None
            or self.max_bruteforce_n is not None
        )

    def backoff(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based)."""
        if attempt <= 0:
            return 0.0
        return min(self.backoff_cap, self.backoff_base * (2.0 ** (attempt - 1)))

    def with_checkpoint(self, path: Optional[str]) -> "RuntimePolicy":
        return replace(self, checkpoint=path)


def resolve_policy(ctx, policy: Optional[RuntimePolicy] = None) -> RuntimePolicy:
    """The explicit ``policy``, else the context's, else the inert default."""
    if policy is not None:
        return policy
    attached = getattr(ctx, "runtime", None)
    if isinstance(attached, RuntimePolicy):
        return attached
    return RuntimePolicy()
