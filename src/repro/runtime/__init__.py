"""Fault-tolerant supervised execution for sweeps and experiments.

The runtime layer wraps the library's embarrassingly-parallel work units
(sweep cells, experiments) in a supervision loop that preserves the
bit-identical determinism contract while surviving the failures long runs
actually hit: hung solver iterations, OOM-killed workers, transient
numeric breakdown, and operator kills mid-sweep.

Four cooperating pieces:

* :class:`RuntimePolicy` (:mod:`repro.runtime.policy`) -- the frozen knob
  set (timeout, retries, backoff, start method, checkpoint, fault spec)
  that travels from the CLI onto ``EngineContext.runtime`` and down into
  the sweep layer.  The default policy is inert: nothing changes until a
  knob is turned.
* :func:`supervised_map` (:mod:`repro.runtime.supervisor`) -- the
  order-preserving map that imposes per-cell wall-clock budgets, respawns
  dead workers, retries retryable failures with capped exponential
  backoff, escalates exhausted numeric failures to the exact backend, and
  degrades to serial in-process execution when the pool is unrecoverable.
* :class:`CheckpointJournal` (:mod:`repro.runtime.checkpoint`) -- the
  append-only, fsynced, bit-exact journal that lets a killed run resume
  without recomputing (or perturbing) completed cells.
* :class:`FaultInjector` (:mod:`repro.runtime.faults`) -- deterministic
  fault injection keyed by work indices and per-process flow counts, so
  every recovery path above is exercised reproducibly in tests and the
  chaos CI job.
"""

from .checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointJournal,
    decode_value,
    encode_value,
    fingerprint_of,
    open_journal,
    read_journal,
)
from .faults import (
    FaultInjector,
    FaultPlan,
    FaultRule,
    clear_injector,
    current_injector,
    fire_site,
    install_injector,
    parse_fault_spec,
)
from .policy import START_METHODS, RuntimePolicy, resolve_policy
from .supervisor import run_cell, supervised_map

__all__ = [
    "RuntimePolicy",
    "resolve_policy",
    "START_METHODS",
    "supervised_map",
    "run_cell",
    "CheckpointJournal",
    "open_journal",
    "encode_value",
    "decode_value",
    "fingerprint_of",
    "CHECKPOINT_FORMAT",
    "read_journal",
    "FaultRule",
    "FaultPlan",
    "FaultInjector",
    "parse_fault_spec",
    "install_injector",
    "clear_injector",
    "current_injector",
    "fire_site",
]
