"""Supervised map: timeouts, retries, respawn, degradation, escalation.

:func:`supervised_map` is the fault-tolerant replacement for the bare
``Pool.map`` the sweep layer used to run on.  It preserves the layer's
load-bearing contract -- results come back **in submission order** and are
**bit-identical** to a serial run -- while adding the four recovery
behaviors the ``full``-scale sweeps need to survive a night:

* **timeouts** -- each cell gets a wall-clock budget; a worker that blows
  it is killed (SIGTERM, then SIGKILL) and replaced;
* **retries with capped exponential backoff** -- retryable failures
  (injected faults, worker deaths, typed numeric errors) re-run the cell
  up to ``policy.retries`` times;
* **precision escalation** -- a cell whose failure is *escalatable*
  (Dinkelbach/fixed-point non-convergence, NaN/Inf instability, audit
  violation) and whose float retries are exhausted is re-run once through
  ``escalate_fn`` (by convention: the exact ``Fraction`` backend);
* **graceful degradation** -- when the pool is unrecoverable (workers die
  repeatedly without completing a single cell, or spawning fails), the
  supervisor falls back to guarded serial execution in-process rather
  than failing the sweep.

Workers are plain ``multiprocessing.Process`` loops with one task queue
and one result queue **each**, so the supervisor always knows exactly
which cell a dead or hung worker was holding and can requeue precisely
that cell.  Per-worker result queues are load-bearing, not a convenience:
with a single shared result queue, a worker killed in the narrow window
where its queue-feeder thread holds the shared write lock leaves that
lock acquired forever, wedging every *other* worker's ``put`` -- the
whole pool stalls on one death.  Private queues confine the damage to the
dying worker's own pipe, whose in-flight cell is requeued anyway (and
result messages are small enough that pipe writes stay atomic, so the
supervisor never reads a torn frame).  Worker-side exceptions cross the
result queue as metadata (never pickled exception objects), and an
optional checkpoint journal records each completed cell durably, in
completion order, keyed by submission index.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import signal
import sys
import time
from collections import deque
from typing import Callable, Optional, Sequence, TypeVar

from ..engine import Counters
from ..exceptions import (
    CellFailedError,
    DeadlineExceededError,
    RemoteCellError,
    WorkerCrashError,
    WorkerTimeoutError,
    is_escalatable,
    is_retryable,
)
from ..guard.resources import (
    apply_rlimits,
    envelope_from_policy,
    set_bruteforce_limit,
    translate_resource_errors,
)
from ..obs.metrics import (
    absorb_metrics,
    begin_metrics_session,
    drain_worker_metrics,
    end_metrics_session,
)
from .checkpoint import CheckpointJournal
from .faults import (
    FaultInjector,
    current_injector,
    install_injector,
    parse_fault_spec,
)
from .policy import RuntimePolicy

__all__ = ["supervised_map", "run_cell"]

T = TypeVar("T")
R = TypeVar("R")


# ---------------------------------------------------------------------------
# guarded single-cell execution (shared by the serial path and degradation)
# ---------------------------------------------------------------------------

def run_cell(
    fn: Callable[[T], R],
    item: T,
    index: int,
    policy: RuntimePolicy,
    counters: Counters,
    escalate_fn: Optional[Callable[[T], R]] = None,
    injector=None,
    deadline: Optional[float] = None,
) -> R:
    """Run one cell under the retry/escalation state machine, in-process.

    The serial twin of what the parallel supervisor does per cell: fire
    any index-matched faults (serially simulated), retry retryable
    failures with backoff, escalate deterministic numeric failures to
    ``escalate_fn`` once retries are exhausted, and wrap permanent
    failures in :class:`~repro.exceptions.CellFailedError`.

    ``deadline`` is an absolute ``time.monotonic()`` point past which the
    retry ladder must not continue: an attempt is not *started* (and a
    backoff is not slept) once the deadline has passed -- the cell raises
    :class:`~repro.exceptions.DeadlineExceededError` instead.  A running
    attempt cannot be preempted in-process (that is what worker kills are
    for), so the serial path enforces the budget at the attempt
    boundaries, not mid-solve.
    """
    attempt = 0
    while True:
        if deadline is not None and time.monotonic() >= deadline:
            raise DeadlineExceededError(
                f"cell {index} deadline budget exhausted before attempt "
                f"{attempt}")
        try:
            if injector is not None:
                injector.fire("worker", index=index, attempt=attempt)
                injector.fire("cell", index=index, attempt=attempt)
            prev_limit = (set_bruteforce_limit(policy.max_bruteforce_n)
                          if policy.max_bruteforce_n is not None else None)
            try:
                return fn(item)
            except (MemoryError, RecursionError) as exc:
                # In-process we cannot setrlimit (it would cap the host
                # run), but exhaustion still becomes the typed, retryable
                # error so the recovery ladder below applies.
                raise translate_resource_errors(exc) from exc
            finally:
                if prev_limit is not None:
                    set_bruteforce_limit(prev_limit)
        except Exception as exc:
            if not is_retryable(exc):
                raise
            if attempt >= policy.retries:
                if policy.escalate and escalate_fn is not None and is_escalatable(exc):
                    counters.precision_escalations += 1
                    return escalate_fn(item)
                raise CellFailedError(index, exc) from exc
            attempt += 1
            counters.cell_retries += 1
            backoff = policy.backoff(attempt)
            if (deadline is not None
                    and time.monotonic() + backoff >= deadline):
                raise DeadlineExceededError(
                    f"cell {index} deadline budget exhausted during retry "
                    f"backoff (attempt {attempt})") from exc
            if backoff > 0:
                time.sleep(backoff)


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

def _bind_to_parent_death() -> None:
    """Linux: arrange for the kernel to SIGKILL this worker when its
    parent dies (``PR_SET_PDEATHSIG``).

    A worker that outlives a crashed parent is worse than a leak: a
    forked child holds *every* inherited descriptor, and when the parent
    is a serving daemon that includes its listening socket -- the orphan
    keeps the port bound and silently swallows new connections into a
    backlog nothing will ever accept, wedging the restarted server.  The
    supervisor's own kill paths cover supervised shutdowns; this covers
    the parent dying in ways nothing supervises (SIGKILL, OOM, segfault).
    Best-effort and Linux-only: elsewhere the supervisor-side cleanup is
    the only line of defense.
    """
    if not sys.platform.startswith("linux"):
        return
    try:
        import ctypes

        libc = ctypes.CDLL(None, use_errno=True)
        PR_SET_PDEATHSIG = 1
        libc.prctl(PR_SET_PDEATHSIG, signal.SIGKILL, 0, 0, 0)
    except Exception:  # pragma: no cover - no libc/prctl on this platform
        return
    # Close the fork-to-prctl race: a parent that died in between will
    # never trigger the death signal, but it did reparent us to init.
    if os.getppid() == 1:
        os._exit(1)


def _worker_main(task_q, result_q, fn, fault_spec: Optional[str],
                 envelope: Optional[tuple] = None,
                 max_bruteforce_n: Optional[int] = None) -> None:
    """Worker loop: pull ``(index, attempt, item)``, push results/failures.

    Each worker process installs its own injector from the picklable spec
    string (worker state never crosses the process boundary), so
    index-keyed rules fire deterministically on whichever worker draws the
    matching cell.  ``None`` is the shutdown sentinel.

    ``envelope`` is the picklable ``(max_memory_mb, max_cpu_seconds)``
    resource envelope: applied via ``setrlimit`` before any cell runs, so
    a memory-ballooning cell fails with a catchable ``MemoryError``
    (reported as a typed ``ResourceExhaustedError``) instead of the kernel
    OOM-killing the worker, and a CPU-runaway cell is killed by the kernel
    at the CPU budget (surfacing as a crash the supervisor requeues).

    Every result message carries, as its last slot, the worker's metrics
    delta -- counters and spans the cell accumulated on this process's
    registered engine contexts (see :mod:`repro.obs.metrics`) -- so the
    supervisor can merge true worker-side work totals into the parent
    context instead of dropping them with the worker.  The delta is
    ``None`` for cells that touched no engine context, and stays a small
    flat dict otherwise, preserving the atomic-pipe-write size assumption.
    """
    _bind_to_parent_death()
    if envelope is not None:
        apply_rlimits(*envelope)
    if max_bruteforce_n is not None:
        set_bruteforce_limit(max_bruteforce_n)
    injector = None
    if fault_spec:
        injector = install_injector(parse_fault_spec(fault_spec), in_worker=True)
    while True:
        msg = task_q.get()
        if msg is None:
            return
        index, attempt, item = msg
        try:
            if injector is not None:
                injector.fire("worker", index=index, attempt=attempt)  # may _exit
                injector.fire("cell", index=index, attempt=attempt)
            value = fn(item)
            result_q.put((index, attempt, True, value, None,
                          drain_worker_metrics()))
        except BaseException as exc:  # noqa: BLE001 - must report, not die
            exc = translate_resource_errors(exc)
            result_q.put((
                index, attempt, False, None,
                {
                    "type": type(exc).__name__,
                    "message": str(exc),
                    "retryable": is_retryable(exc),
                    "escalatable": is_escalatable(exc),
                },
                # Work done before the failure is still work done -- ship
                # the partial delta so retried cells are counted honestly.
                drain_worker_metrics(),
            ))


def _decode_failure(meta: dict) -> RemoteCellError:
    return RemoteCellError(
        type_name=meta.get("type", "Exception"),
        message=meta.get("message", ""),
        retryable=bool(meta.get("retryable", False)),
        escalatable=bool(meta.get("escalatable", False)),
    )


# ---------------------------------------------------------------------------
# supervisor side
# ---------------------------------------------------------------------------

class _Supervisor:
    """State of one supervised parallel map."""

    def __init__(
        self,
        fn,
        items: Sequence,
        processes: int,
        policy: RuntimePolicy,
        counters: Counters,
        escalate_fn,
        journal: Optional[CheckpointJournal],
        key_fn,
        tracer=None,
        deadlines: Optional[list] = None,
        on_deadline=None,
    ) -> None:
        self.fn = fn
        self.items = list(items)
        self.policy = policy
        self.counters = counters
        self.escalate_fn = escalate_fn
        self.journal = journal
        self.key_fn = key_fn
        self.tracer = tracer
        #: Absolute time.monotonic() deadline per submission index (None =
        #: unbounded), and the hook that synthesizes an expired cell's
        #: result value.  See supervised_map(budgets=..., on_deadline=...).
        self.deadlines = deadlines
        self.on_deadline = on_deadline
        self.results: dict[int, object] = {}
        self.pending: deque[tuple[float, int, int]] = deque()  # (ready_at, idx, attempt)
        self.inflight: dict[int, tuple[int, int, float]] = {}  # wid -> (idx, attempt, deadline)
        self.workers: dict[int, tuple] = {}  # wid -> (Process, task_q, result_q)
        self.mctx = mp.get_context(policy.start_method)
        self.processes = processes
        self._next_wid = 0
        self._deaths_since_progress = 0
        self._degraded = False

    # -- worker lifecycle -------------------------------------------------
    def _spawn_worker(self) -> Optional[int]:
        wid = self._next_wid
        self._next_wid += 1
        task_q = self.mctx.Queue()
        result_q = self.mctx.Queue()
        proc = self.mctx.Process(
            target=_worker_main,
            args=(task_q, result_q, self.fn, self.policy.faults,
                  envelope_from_policy(self.policy),
                  self.policy.max_bruteforce_n),
            daemon=True,
        )
        try:
            proc.start()
        except OSError:
            return None
        self.workers[wid] = (proc, task_q, result_q)
        return wid

    def _kill_worker(self, wid: int) -> None:
        proc, task_q, result_q = self.workers.pop(wid)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)
        task_q.close()
        task_q.cancel_join_thread()
        result_q.close()
        result_q.cancel_join_thread()
        self.inflight.pop(wid, None)

    def _shutdown(self) -> None:
        """Tear down every worker -- no orphans, even on KeyboardInterrupt."""
        for wid, (proc, task_q, _) in list(self.workers.items()):
            if proc.is_alive():
                try:
                    task_q.put_nowait(None)
                except Exception:
                    pass
        deadline = time.monotonic() + 0.5
        for proc, _, _ in self.workers.values():
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for wid in list(self.workers):
            self._kill_worker(wid)

    # -- completion helpers -----------------------------------------------
    def _complete(self, idx: int, value) -> None:
        self.results[idx] = value
        self._deaths_since_progress = 0
        if self.journal is not None:
            self.journal.record(self.key_fn(idx), value)

    def _cell_deadline(self, idx: int) -> Optional[float]:
        if self.deadlines is None:
            return None
        return self.deadlines[idx]

    def _expire(self, idx: int) -> None:
        """The cell's deadline budget ran out: settle it without solving.

        With an ``on_deadline`` hook the cell *completes* with the hook's
        synthesized value (the serving layer's typed error marker), so one
        expired request never fails its batch; without a hook the whole
        map raises -- a caller that passed budgets but no hook wants the
        loud failure.
        """
        self.counters.cell_deadline_expired += 1
        if self.on_deadline is not None:
            self._complete(idx, self.on_deadline(self.items[idx]))
            return
        raise DeadlineExceededError(
            f"cell {idx} deadline budget exhausted in supervised map")

    def _handle_failure(self, idx: int, attempt: int, exc: Exception) -> None:
        cd = self._cell_deadline(idx)
        if cd is not None and time.monotonic() >= cd:
            self._expire(idx)
            return
        if not is_retryable(exc):
            raise exc
        if attempt >= self.policy.retries:
            if (self.policy.escalate and self.escalate_fn is not None
                    and is_escalatable(exc)):
                self.counters.precision_escalations += 1
                self._complete(idx, self.escalate_fn(self.items[idx]))
                return
            raise CellFailedError(idx, exc) from exc
        self.counters.cell_retries += 1
        ready_at = time.monotonic() + self.policy.backoff(attempt + 1)
        if cd is not None and ready_at >= cd:
            # The backoff alone would outlive the budget; expire now
            # rather than queueing a retry that can never start.
            self._expire(idx)
            return
        self.pending.append((ready_at, idx, attempt + 1))

    def _requeue_infra_failure(self, wid: int, exc: Exception) -> None:
        """A worker died or hung while holding a cell: replace and requeue."""
        idx, attempt, _ = self.inflight[wid]
        self._kill_worker(wid)
        self._deaths_since_progress += 1
        self._handle_failure(idx, attempt, exc)
        if len(self.workers) < self.processes and not self._pool_unrecoverable():
            if self._spawn_worker() is not None:
                self.counters.worker_respawns += 1

    def _pool_unrecoverable(self) -> bool:
        return self._deaths_since_progress > self.policy.max_pool_failures

    # -- degradation ------------------------------------------------------
    def _degrade_to_serial(self) -> None:
        """Pool is unrecoverable: finish every outstanding cell in-process."""
        self._degraded = True
        for wid in list(self.workers):
            self._kill_worker(wid)
        outstanding = sorted(
            set(range(len(self.items)))
            - set(self.results)
        )
        injector = current_injector()
        for idx in outstanding:
            try:
                value = run_cell(
                    self.fn, self.items[idx], idx, self.policy, self.counters,
                    escalate_fn=self.escalate_fn, injector=injector,
                    deadline=self._cell_deadline(idx),
                )
            except DeadlineExceededError:
                self._expire(idx)
                continue
            self._complete(idx, value)
        self.pending.clear()
        self.inflight.clear()

    # -- main loop --------------------------------------------------------
    def run(self) -> list:
        n = len(self.items)
        # Seed from the checkpoint journal before any work is queued.
        if self.journal is not None:
            for idx in range(n):
                key = self.key_fn(idx)
                if key in self.journal:
                    self.results[idx] = self.journal.get(key)
                    self.counters.checkpoint_hits += 1
        for idx in range(n):
            if idx not in self.results:
                self.pending.append((0.0, idx, 0))
        if not self.pending:
            return [self.results[i] for i in range(n)]

        spawned = 0
        want = min(self.processes, len(self.pending))
        for _ in range(want):
            if self._spawn_worker() is not None:
                spawned += 1
        if spawned == 0:
            # Could not start a single worker: degrade immediately.
            self._degrade_to_serial()
            return [self.results[i] for i in range(n)]

        try:
            while len(self.results) < n and not self._degraded:
                self._assign_ready_work()
                self._drain_results()
                self._check_deadlines_and_deaths()
                if self._pool_unrecoverable() or (not self.workers and self.pending):
                    self._degrade_to_serial()
        finally:
            self._shutdown()
        return [self.results[i] for i in range(n)]

    def _assign_ready_work(self) -> None:
        if not self.pending:
            return
        now = time.monotonic()
        for wid, (proc, task_q, _) in list(self.workers.items()):
            # Settle any head-of-queue cells whose budget already ran out:
            # assigning them would only burn a worker on unwanted work.
            while self.pending:
                _, head_idx, _ = self.pending[0]
                head_cd = self._cell_deadline(head_idx)
                if head_cd is not None and now >= head_cd:
                    self.pending.popleft()
                    self._expire(head_idx)
                else:
                    break
            if wid in self.inflight or not self.pending:
                continue
            ready_at, idx, attempt = self.pending[0]
            if ready_at > now:
                break
            self.pending.popleft()
            deadline = (now + self.policy.timeout
                        if self.policy.timeout is not None else float("inf"))
            cd = self._cell_deadline(idx)
            if cd is not None:
                deadline = min(deadline, cd)
            try:
                task_q.put((idx, attempt, self.items[idx]))
            except Exception:
                # Broken pipe to this worker: put the cell back, replace the
                # worker, and let the next loop iteration reassign.
                self.pending.appendleft((ready_at, idx, attempt))
                self._kill_worker(wid)
                self._deaths_since_progress += 1
                if not self._pool_unrecoverable():
                    if self._spawn_worker() is not None:
                        self.counters.worker_respawns += 1
                return
            self.inflight[wid] = (idx, attempt, deadline)

    def _drain_worker(self, wid: int) -> bool:
        """Non-blocking drain of one worker's private result queue."""
        entry = self.workers.get(wid)
        if entry is None:
            return False
        result_q = entry[2]
        drained = False
        while True:
            try:
                msg = result_q.get_nowait()
            except (queue_mod.Empty, OSError, EOFError):
                return drained
            drained = True
            idx, attempt, ok, value, failure, metrics = msg
            # Merge the worker's delta unconditionally -- even for late
            # duplicates and failed attempts, the flow solves and iterations
            # it reports were really performed.
            absorb_metrics(metrics, counters=self.counters, tracer=self.tracer)
            if self.inflight.get(wid, (None,))[0] == idx:
                del self.inflight[wid]
            if idx in self.results:
                continue  # late duplicate (e.g. finished right at its deadline)
            if ok:
                self._complete(idx, value)
            else:
                self._handle_failure(idx, attempt, _decode_failure(failure))

    def _drain_results(self, block: bool = True) -> None:
        drained = False
        for wid in list(self.workers):
            drained |= self._drain_worker(wid)
        if block and not drained:
            time.sleep(self.policy.poll_interval)

    def _check_deadlines_and_deaths(self) -> None:
        now = time.monotonic()
        for wid in list(self.inflight):
            if wid not in self.workers or wid not in self.inflight:
                continue
            proc = self.workers[wid][0]
            idx, attempt, deadline = self.inflight[wid]
            if not proc.is_alive():
                # Drain any result the worker managed to flush before dying.
                self._drain_worker(wid)
                if wid not in self.inflight:
                    self._kill_worker(wid)
                    if (len(self.workers) < self.processes
                            and (self.pending or self.inflight)):
                        if self._spawn_worker() is not None:
                            self.counters.worker_respawns += 1
                    continue
                self._requeue_infra_failure(wid, WorkerCrashError(
                    f"worker died while computing cell {idx} "
                    f"(exit code {proc.exitcode})"))
            elif now > deadline:
                cd = self._cell_deadline(idx)
                if cd is not None and now >= cd:
                    # The *request's* deadline budget (not the policy
                    # timeout) is what ran out: kill the worker to stop
                    # unwanted work, settle the cell as expired, and do
                    # not count the death against pool health -- the
                    # shard did nothing wrong.
                    self._kill_worker(wid)
                    self._expire(idx)
                    if (len(self.workers) < self.processes
                            and (self.pending or self.inflight)):
                        if self._spawn_worker() is not None:
                            self.counters.worker_respawns += 1
                    continue
                self.counters.cell_timeouts += 1
                self._requeue_infra_failure(wid, WorkerTimeoutError(
                    f"cell {idx} exceeded its {self.policy.timeout:g}s budget; "
                    f"worker killed"))


def supervised_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    processes: int = 0,
    policy: Optional[RuntimePolicy] = None,
    counters: Optional[Counters] = None,
    escalate_fn: Optional[Callable[[T], R]] = None,
    journal: Optional[CheckpointJournal] = None,
    key_fn: Optional[Callable[[int], str]] = None,
    tracer=None,
    budgets: Optional[Sequence[Optional[float]]] = None,
    on_deadline: Optional[Callable[[T], R]] = None,
) -> list[R]:
    """Fault-tolerant, order-preserving map over ``items``.

    ``processes <= 0`` runs serially in-process (cells still get the full
    retry/escalation treatment, with kill/hang faults simulated as the
    errors the supervisor would synthesize).  ``fn`` and the items must be
    picklable for the parallel path; ``escalate_fn`` runs in the
    supervisor process.  ``key_fn`` maps a submission index to a stable
    journal key (defaults to ``str(index)``).

    ``budgets`` propagates per-cell *deadline budgets* (seconds of wall
    clock remaining, measured from map entry; ``None`` entries are
    unbounded).  A cell's effective kill deadline is the tighter of the
    static ``policy.timeout`` and its remaining budget, and the budget
    bounds the whole recovery ladder -- retries are not started (and
    backoffs not slept) past it.  An expired cell completes with
    ``on_deadline(item)`` when the hook is given (the serving layer's
    typed ``deadline_exceeded`` marker -- one late request never fails
    its batch), else the map raises
    :class:`~repro.exceptions.DeadlineExceededError`.  Expirations count
    under ``counters.cell_deadline_expired`` and deliberately do *not*
    count as pool failures: a client-imposed deadline says nothing about
    shard health.

    Work accounting: cells that rebuild engine contexts from a spec (in
    workers *or* in this process -- the serial path, degradation, and
    escalation all run cells here) accumulate onto per-process memoized
    contexts, not onto ``counters``.  The map brackets itself with the
    :mod:`repro.obs.metrics` drain protocol: pending deltas from earlier,
    already-reported work are discarded up front (this also synchronizes
    the marks that forked workers inherit), worker deltas arrive with each
    result message, and one final drain folds the work this process itself
    performed into ``counters`` (and span deltas into ``tracer``).
    """
    policy = policy if policy is not None else RuntimePolicy()
    counters = counters if counters is not None else Counters()
    key_fn = key_fn if key_fn is not None else str
    items = list(items)
    deadlines: Optional[list] = None
    if budgets is not None:
        budgets = list(budgets)
        if len(budgets) != len(items):
            raise ValueError(
                f"budgets length {len(budgets)} != items length {len(items)}")
        t0 = time.monotonic()
        deadlines = [t0 + b if b is not None else None for b in budgets]

    # Session bracket, not a bare mark-sync: when maps overlap (the serving
    # layer dispatches one per shard concurrently), only the first may
    # discard pending deltas -- a later reset would swallow a sibling map's
    # not-yet-drained work.
    begin_metrics_session()
    try:
        # A single item normally short-circuits to the serial path, but a
        # resource envelope can only be enforced inside a real worker process
        # (setrlimit is irreversible and process-wide, so it must never touch
        # the host): honor the envelope even for one cell.
        serial_single = len(items) <= 1 and envelope_from_policy(policy) is None
        if processes <= 0 or serial_single:
            # An explicitly installed injector wins (the CLI's global
            # --inject-faults path); otherwise honor policy.faults with a
            # map-local injector, mirroring how each worker process builds
            # one from the same spec string.  Local, not installed: the
            # plan must not leak into unrelated maps in this process.
            injector = current_injector()
            if injector is None and policy.faults:
                injector = FaultInjector(
                    parse_fault_spec(policy.faults), counters=counters)
            out: list = []
            for idx, item in enumerate(items):
                if journal is not None:
                    key = key_fn(idx)
                    if key in journal:
                        counters.checkpoint_hits += 1
                        out.append(journal.get(key))
                        continue
                try:
                    value = run_cell(fn, item, idx, policy, counters,
                                     escalate_fn=escalate_fn,
                                     injector=injector,
                                     deadline=(deadlines[idx]
                                               if deadlines else None))
                except DeadlineExceededError:
                    counters.cell_deadline_expired += 1
                    if on_deadline is None:
                        raise
                    out.append(on_deadline(item))
                    continue
                if journal is not None:
                    journal.record(key_fn(idx), value)
                out.append(value)
            return out

        sup = _Supervisor(fn, items, processes, policy, counters,
                          escalate_fn, journal, key_fn, tracer=tracer,
                          deadlines=deadlines, on_deadline=on_deadline)
        return sup.run()
    finally:
        try:
            absorb_metrics(drain_worker_metrics(), counters=counters, tracer=tracer)
        finally:
            end_metrics_session()
