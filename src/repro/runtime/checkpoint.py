"""Append-only checkpoint journal for resumable sweeps.

A journal is a JSON-lines file: one header line carrying a format version
and a *fingerprint* of the work it belongs to (seed, scale, solver,
backend, grid, instance hashes -- whatever the producer folds in), then
one ``{"k": key, "v": encoded-value}`` line per completed cell, flushed
and fsynced as it lands so a ``kill -9`` loses at most the cell in
flight.  Values round-trip **bit-exactly**: floats serialize as hex (the
same discipline as :mod:`repro.io.serialization`), Fractions as ``"p/q"``,
and containers recursively -- a resumed sweep's results are
indistinguishable from an uninterrupted run's.

Resume safety: opening an existing journal with a different fingerprint
raises :class:`~repro.exceptions.CheckpointError` instead of silently
mixing cells of two different sweeps.  A torn final line (the in-flight
write at kill time) is detected and ignored.
"""

from __future__ import annotations

import hashlib
import json
import numbers
import os
from fractions import Fraction
from pathlib import Path
from typing import Callable, Iterator, Optional

from ..exceptions import CheckpointError

__all__ = ["CHECKPOINT_FORMAT", "CheckpointJournal", "encode_value",
           "decode_value", "fingerprint_of", "open_journal", "read_journal"]

#: Journal format version; bump on incompatible schema changes.
CHECKPOINT_FORMAT = 1


def fingerprint_of(**fields) -> str:
    """Canonical journal fingerprint built from named fields.

    Folds every ``key=value`` pair (sorted by key, ``repr``-encoded) into
    one short content hash.  Producers must pass **every input that
    determines cell values** -- and nothing else.  The historical trap
    this helper exists to close: the simulator's journals once fingerprinted
    the instance stream (seed, sizes, weights) but not the *adversary
    strategy mix*, so resuming an EXP-S sweep with a different strategy
    set silently replayed stale cells computed under the old strategies.
    Fold the discriminator in (``strategies=...``) and the resume trips
    :class:`~repro.exceptions.CheckpointError` instead.

    Values must have deterministic ``repr``s (numbers, strings, bools,
    None, and tuples/lists/dicts thereof); floats are folded as hex so two
    values that differ by one ulp never collide.
    """
    h = hashlib.sha256()
    for key in sorted(fields):
        h.update(f"{key}=".encode())
        h.update(_fingerprint_repr(fields[key]).encode())
        h.update(b";")
    return h.hexdigest()[:16]


def _fingerprint_repr(value) -> str:
    if isinstance(value, float):
        return value.hex()
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_fingerprint_repr(v) for v in value) + "]"
    if isinstance(value, dict):
        return "{" + ",".join(
            f"{k!r}:{_fingerprint_repr(v)}" for k, v in sorted(value.items())
        ) + "}"
    return repr(value)


def encode_value(value):
    """Encode ``value`` into a JSON-safe, bit-exact tagged form.

    Tags: ``["f", hex]`` float, ``["q", "p/q"]`` Fraction, ``["i", n]``
    int, ``["s", str]``, ``["b", bool]``, ``["z"]`` None, ``["l", [...]]``
    list/tuple, ``["m", [[k, v], ...]]`` dict (string keys).  NumPy scalars
    are folded into their Python equivalents (exactly -- float64 shares the
    IEEE double representation); arrays encode as lists.
    """
    if value is None:
        return ["z"]
    if isinstance(value, bool):
        return ["b", value]
    if isinstance(value, str):
        return ["s", value]
    if isinstance(value, Fraction):
        return ["q", f"{value.numerator}/{value.denominator}"]
    if isinstance(value, float):  # catches numpy float64 (a float subclass)
        return ["f", float(value).hex()]
    if isinstance(value, numbers.Integral):
        return ["i", int(value)]
    if isinstance(value, numbers.Real):  # numpy float32 and friends
        return ["f", float(value).hex()]
    if isinstance(value, dict):
        items = []
        for k, v in value.items():
            if not isinstance(k, str):
                raise CheckpointError(
                    f"checkpoint dict keys must be strings, got {k!r}"
                )
            items.append([k, encode_value(v)])
        return ["m", items]
    if isinstance(value, (list, tuple)) or type(value).__name__ == "ndarray":
        return ["l", [encode_value(v) for v in value]]
    raise CheckpointError(f"cannot checkpoint value of type {type(value).__name__}")


def decode_value(obj):
    """Inverse of :func:`encode_value`."""
    try:
        tag = obj[0]
        if tag == "z":
            return None
        if tag == "b":
            return bool(obj[1])
        if tag == "s":
            return obj[1]
        if tag == "q":
            num, den = obj[1].split("/")
            return Fraction(int(num), int(den))
        if tag == "f":
            if not isinstance(obj[1], str):
                raise CheckpointError(
                    f"float checkpoint value must be a hex string, got {obj[1]!r}"
                )
            return float.fromhex(obj[1])
        if tag == "i":
            if isinstance(obj[1], float):
                raise CheckpointError(
                    f"integer checkpoint value holds a float: {obj[1]!r}"
                )
            return int(obj[1])
        if tag == "l":
            return [decode_value(v) for v in obj[1]]
        if tag == "m":
            return {k: decode_value(v) for k, v in obj[1]}
    except (TypeError, ValueError, IndexError, KeyError,
            ZeroDivisionError, AttributeError) as exc:
        # AttributeError: a "q"/"m" payload of the wrong type (e.g. None
        # where a "p/q" string belongs) must refuse typed like the rest.
        # ZeroDivisionError: a hand-mangled "p/0" Fraction must refuse with
        # the typed error like every other wrong-type scalar, never leak an
        # arithmetic traceback out of a resume.
        raise CheckpointError(f"malformed checkpoint value {obj!r}: {exc}") from exc
    raise CheckpointError(f"unknown checkpoint value tag {obj!r}")


def read_journal(
    path: str | Path,
    parse_record: Callable[[object], object],
    check_header: Optional[Callable[[dict], None]] = None,
) -> tuple[dict, list]:
    """Read one append-only JSONL journal with torn-tail recovery.

    The shared recovery discipline behind :class:`CheckpointJournal` and
    the serving layer's write-ahead request journal
    (:mod:`repro.serve.durability`): the first line must be a JSON object
    header (malformed headers refuse loudly -- there is nothing safe to
    salvage from a journal whose identity line is gone); every following
    line is JSON-parsed and passed through ``parse_record``.  A bad
    *final* line -- undecodable JSON or a ``parse_record`` that raises
    :class:`CheckpointError` / ``KeyError`` / ``TypeError`` -- is the
    write that was in flight at kill time: it is dropped and **physically
    truncated** (an append after resume must never concatenate onto the
    torn fragment).  A bad line anywhere else is real corruption and
    raises :class:`CheckpointError`.

    ``check_header`` (when given) runs on the parsed header *before* any
    record is touched: a journal that fails its identity check (wrong
    format, foreign fingerprint) must be refused without mutating it --
    truncating the torn tail of a file we decline to resume would modify
    state we disclaimed ownership of.

    Returns ``(header, records)`` where ``records`` are the
    ``parse_record`` outputs of every surviving record line.
    """
    path = Path(path)
    with open(path, "rb") as fh:
        raw = fh.read()
    blobs = raw.split(b"\n")
    if blobs and blobs[-1] == b"":
        blobs.pop()  # file ends with a newline, as every clean write does
    lines = [b.decode("utf-8", errors="replace") for b in blobs]
    if not lines:
        raise CheckpointError(f"checkpoint {path} is empty (no header)")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"checkpoint {path} has a malformed header: {exc}"
        ) from exc
    if not isinstance(header, dict):
        raise CheckpointError(
            f"checkpoint {path} header is not an object: "
            f"{type(header).__name__}"
        )
    if check_header is not None:
        check_header(header)
    records: list = []
    for i, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            records.append(parse_record(json.loads(line)))
        except (json.JSONDecodeError, KeyError, TypeError, CheckpointError):
            if i == len(lines):
                # Torn final line: the write in flight when the run was
                # killed.  Drop it -- and physically truncate it, or the
                # next append would concatenate onto the torn fragment
                # and corrupt that record too (the cell is recomputed).
                keep = sum(len(b) + 1 for b in blobs[:i - 1])
                with open(path, "r+b") as fh:
                    fh.truncate(keep)
                    fh.flush()
                    os.fsync(fh.fileno())
                break
            raise CheckpointError(
                f"checkpoint {path} line {i} is corrupt mid-file"
            )
    return header, records


class CheckpointJournal:
    """One append-only journal, keyed by opaque string cell keys.

    Open with :meth:`open`, which loads any completed cells from a prior
    (possibly killed) run after verifying the fingerprint.  ``record`` is
    durable on return (flush + fsync) so the journal never claims a cell
    that was not fully computed.
    """

    def __init__(self, path: str | Path, fingerprint: str) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.done: dict[str, object] = {}
        self._fh = None

    # -- lifecycle --------------------------------------------------------
    @classmethod
    def open(cls, path: str | Path, fingerprint: str) -> "CheckpointJournal":
        journal = cls(path, fingerprint)
        if journal.path.exists():
            journal._load_existing()
        else:
            journal.path.parent.mkdir(parents=True, exist_ok=True)
            with open(journal.path, "w") as fh:
                fh.write(json.dumps(
                    {"format": CHECKPOINT_FORMAT, "fingerprint": fingerprint},
                    separators=(",", ":"),
                ) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
        journal._fh = open(journal.path, "a")
        return journal

    def _check_header(self, header: dict) -> None:
        fmt = header.get("format")
        if fmt != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"checkpoint {self.path} has format {fmt!r}; supported: "
                f"{CHECKPOINT_FORMAT}"
            )
        if header.get("fingerprint") != self.fingerprint:
            raise CheckpointError(
                f"checkpoint {self.path} belongs to a different run "
                f"(fingerprint {header.get('fingerprint')!r} != "
                f"{self.fingerprint!r}); refusing to resume"
            )

    def _load_existing(self) -> None:
        _header, records = read_journal(
            self.path,
            lambda entry: (entry["k"], decode_value(entry["v"])),
            check_header=self._check_header,
        )
        for key, value in records:
            self.done[key] = value

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- access -----------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return key in self.done

    def get(self, key: str):
        return self.done.get(key)

    def __len__(self) -> int:
        return len(self.done)

    def keys(self) -> Iterator[str]:
        return iter(self.done)

    def record(self, key: str, value) -> None:
        """Durably append one completed cell (idempotent per key)."""
        if key in self.done:
            return
        if self._fh is None:
            raise CheckpointError(f"checkpoint {self.path} is not open for writing")
        self.done[key] = value
        self._fh.write(json.dumps(
            {"k": key, "v": encode_value(value)}, separators=(",", ":")
        ) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())


def open_journal(
    path: Optional[str | Path], fingerprint: str
) -> Optional[CheckpointJournal]:
    """``CheckpointJournal.open`` that forwards ``None`` (no checkpointing)."""
    if path is None:
        return None
    return CheckpointJournal.open(path, fingerprint)
