"""Deterministic fault injection for testing every recovery path.

A fault *spec* is a compact string -- e.g. ``"cell:exc@3;worker:kill@5;
flow:nan@40;cell:hang@7:30"`` -- parsed into a frozen :class:`FaultPlan` of
:class:`FaultRule` entries ``site:kind@n[:param]``:

========  ======================  =======================================
site      keyed by                kinds
========  ======================  =======================================
``exp``   experiment index        ``exc``, ``delay``
``cell``  sweep-cell index        ``exc``, ``hang``, ``delay``
``worker``sweep-cell index        ``kill``
``flow``  per-process flow-call   ``nan``, ``exc``
          count
========  ======================  =======================================

Determinism is the whole point: ``exp``/``cell``/``worker`` rules match an
*index the caller passes in* (the experiment's registry position, the
cell's submission index), so they fire on the same logical unit of work
regardless of process scheduling; ``flow`` rules count solves within one
process, which is deterministic for serial runs and replay.  Every rule
fires at most once per injector and only on a cell's *first* attempt, so a
supervised run with ``retries >= 1`` recovers and produces output
bit-identical to a fault-free run -- the property the chaos CI job pins.

Kinds map to the failure they simulate: ``exc`` raises
:class:`~repro.exceptions.InjectedFault` (a generic retryable crash),
``hang`` sleeps past any sane timeout inside a worker (param = seconds,
default 3600) and *simulates* the resulting kill with
:class:`~repro.exceptions.WorkerTimeoutError` when there is no worker to
hang, ``delay`` sleeps param seconds (default 0.05) and continues,
``kill`` hard-exits the worker process (``os._exit``; simulated as
:class:`~repro.exceptions.WorkerCrashError` serially), and ``nan``
corrupts the next matching flow value to ``float("nan")`` so the engine's
finite-value check trips.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional

from ..engine import set_flow_fault_hook
from ..exceptions import (
    EngineError,
    InjectedFault,
    WorkerCrashError,
    WorkerTimeoutError,
)

__all__ = [
    "FaultRule",
    "FaultPlan",
    "FaultInjector",
    "parse_fault_spec",
    "install_injector",
    "clear_injector",
    "current_injector",
    "fire_site",
]

SITES = ("exp", "cell", "worker", "flow")
_KINDS_BY_SITE = {
    "exp": ("exc", "delay"),
    "cell": ("exc", "hang", "delay"),
    "worker": ("kill",),
    "flow": ("nan", "exc"),
}
#: Sites matched against a caller-supplied index (vs a per-process count).
_INDEX_SITES = ("exp", "cell", "worker")


@dataclass(frozen=True)
class FaultRule:
    """One deterministic fault: fire ``kind`` at occurrence/index ``n``."""

    site: str
    kind: str
    n: int
    param: Optional[float] = None

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise EngineError(f"unknown fault site {self.site!r}; known: {SITES}")
        if self.kind not in _KINDS_BY_SITE[self.site]:
            raise EngineError(
                f"fault kind {self.kind!r} not valid at site {self.site!r} "
                f"(valid: {_KINDS_BY_SITE[self.site]})"
            )
        if self.n < 0:
            raise EngineError(f"fault position must be >= 0, got {self.n}")

    def render(self) -> str:
        base = f"{self.site}:{self.kind}@{self.n}"
        return base if self.param is None else f"{base}:{self.param:g}"


@dataclass(frozen=True)
class FaultPlan:
    """Parsed, picklable fault-injection plan."""

    rules: tuple[FaultRule, ...] = ()

    def render(self) -> str:
        return ";".join(r.render() for r in self.rules)

    def __bool__(self) -> bool:
        return bool(self.rules)


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse ``site:kind@n[:param]`` clauses separated by ``;`` or ``,``."""
    rules: list[FaultRule] = []
    for clause in spec.replace(",", ";").split(";"):
        clause = clause.strip()
        if not clause:
            continue
        try:
            site_kind, _, pos = clause.partition("@")
            site, _, kind = site_kind.partition(":")
            if not pos or not kind:
                raise ValueError("missing '@' position or ':' kind")
            pos_part, _, param_part = pos.partition(":")
            n = int(pos_part)
            param = float(param_part) if param_part else None
        except ValueError as exc:
            raise EngineError(
                f"malformed fault clause {clause!r} "
                f"(expected site:kind@n[:param]): {exc}"
            ) from exc
        rules.append(FaultRule(site=site.strip(), kind=kind.strip(), n=n, param=param))
    if not rules:
        raise EngineError(f"fault spec {spec!r} contains no rules")
    return FaultPlan(rules=tuple(rules))


class FaultInjector:
    """Stateful per-process executor of one :class:`FaultPlan`.

    ``in_worker`` selects the physical behavior of ``kill``/``hang``
    (actually exit / actually sleep) versus the serial simulation (raise
    the error the supervisor would have synthesized).  ``counters`` is an
    optional :class:`~repro.engine.Counters` whose ``injected_faults``
    field tallies every fired rule; worker-process tallies are local and
    discarded, same as all worker counters.
    """

    def __init__(self, plan: FaultPlan, in_worker: bool = False, counters=None) -> None:
        self.plan = plan
        self.in_worker = in_worker
        self.counters = counters
        self._fired: set[FaultRule] = set()
        self._counts: dict[str, int] = {}

    # -- matching ---------------------------------------------------------
    def _match(self, site: str, index: Optional[int]) -> Optional[FaultRule]:
        if site in _INDEX_SITES:
            key = index
        else:
            self._counts[site] = self._counts.get(site, 0) + 1
            key = self._counts[site]
        if key is None:
            return None
        for rule in self.plan.rules:
            if rule.site == site and rule.n == key and rule not in self._fired:
                return rule
        return None

    def _record(self, rule: FaultRule) -> None:
        self._fired.add(rule)
        if self.counters is not None:
            self.counters.injected_faults += 1

    # -- firing -----------------------------------------------------------
    def fire(self, site: str, index: Optional[int] = None, attempt: int = 0) -> None:
        """Fire any matching rule at ``site``.

        Rules only trigger on ``attempt == 0`` so retried work always runs
        clean -- the invariant that makes injected faults recoverable.  A
        rule that already fired stays consumed for the injector's lifetime
        (one process, or one supervised pool's worker).
        """
        rule = self._match(site, index)
        if rule is None or attempt != 0:
            return
        self._record(rule)
        if rule.kind == "exc":
            raise InjectedFault(
                f"injected fault at {rule.render()}", site=site, rule=rule.render()
            )
        if rule.kind == "delay":
            time.sleep(rule.param if rule.param is not None else 0.05)
            return
        if rule.kind == "hang":
            if self.in_worker:
                time.sleep(rule.param if rule.param is not None else 3600.0)
                return
            raise WorkerTimeoutError(
                f"injected hang at {rule.render()} (serial simulation)"
            )
        if rule.kind == "kill":
            if self.in_worker:
                os._exit(17)
            raise WorkerCrashError(
                f"injected worker kill at {rule.render()} (serial simulation)"
            )

    def corrupt_flow(self, value):
        """Flow-boundary hook (installed via the engine's fault hook)."""
        rule = self._match("flow", None)
        if rule is None:
            return value
        self._record(rule)
        if rule.kind == "exc":
            raise InjectedFault(
                f"injected fault at {rule.render()}", site="flow", rule=rule.render()
            )
        return float("nan")


#: The process-global injector (``None`` = injection disabled).
_CURRENT: Optional[FaultInjector] = None


def install_injector(
    plan: FaultPlan, in_worker: bool = False, counters=None
) -> FaultInjector:
    """Build an injector from ``plan``, install it process-globally, and
    wire its flow hook into the engine.  Returns the injector."""
    global _CURRENT
    injector = FaultInjector(plan, in_worker=in_worker, counters=counters)
    _CURRENT = injector
    set_flow_fault_hook(injector.corrupt_flow)
    return injector


def clear_injector() -> None:
    """Remove any installed injector and detach the engine flow hook."""
    global _CURRENT
    _CURRENT = None
    set_flow_fault_hook(None)


def current_injector() -> Optional[FaultInjector]:
    return _CURRENT


def fire_site(site: str, index: Optional[int] = None, attempt: int = 0) -> None:
    """Fire ``site`` on the installed injector, if any (no-op otherwise)."""
    if _CURRENT is not None:
        _CURRENT.fire(site, index=index, attempt=attempt)
