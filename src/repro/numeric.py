"""Numeric backend adapters: exact ``Fraction`` vs tolerance-aware ``float``.

The bottleneck decomposition, the BD allocation, and the theory checkers are
all generic over the scalar type.  Two backends are provided:

``EXACT``
    Python :class:`fractions.Fraction`.  Every comparison is exact, which is
    what the combinatorial structure of Definition 2 needs: the *maximal*
    bottleneck is defined through exact ties in the alpha-ratio, and a float
    epsilon would silently merge or split pairs.  Used for theory/property
    checks and small-to-medium instances.

``FLOAT``
    IEEE doubles with an explicit absolute tolerance.  Used by the large
    parameter sweeps and the NumPy-vectorized dynamics simulator where the
    Fraction denominators would otherwise grow without bound.

The adapters deliberately expose only the handful of operations the
algorithms need (conversion, comparisons, zero/one), keeping the hot paths
free of ``isinstance`` dispatch: callers grab the backend once and use plain
arithmetic on the scalars it hands out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence, Union

__all__ = [
    "Scalar",
    "Backend",
    "EXACT",
    "FLOAT",
    "make_float_backend",
    "as_fraction",
    "as_fractions",
    "DEFAULT_TOL",
]

#: Scalar values accepted as vertex weights anywhere in the library.
Scalar = Union[int, float, Fraction]

#: Default absolute tolerance of the float backend.  Alpha-ratios on the
#: instances we sweep are O(1), so 1e-9 comfortably separates genuinely
#: distinct ratios while absorbing flow round-off.
DEFAULT_TOL = 1e-9


def as_fraction(x: Scalar) -> Fraction:
    """Convert ``x`` to an exact :class:`Fraction`.

    Floats convert via :meth:`Fraction.from_float` (exact binary value), so a
    caller that wants "nice" rationals should pass ints, strings via
    ``Fraction``, or Fractions directly.
    """
    if isinstance(x, Fraction):
        return x
    if isinstance(x, int):
        return Fraction(x)
    if isinstance(x, float):
        if math.isnan(x) or math.isinf(x):
            raise ValueError(f"cannot convert non-finite float {x!r} to Fraction")
        return Fraction(x).limit_denominator(10**12)
    raise TypeError(f"unsupported scalar type {type(x).__name__}")


def as_fractions(xs: Iterable[Scalar]) -> list[Fraction]:
    """Vectorized :func:`as_fraction`."""
    return [as_fraction(x) for x in xs]


@dataclass(frozen=True)
class Backend:
    """A numeric backend: scalar constructor plus tolerance-aware predicates.

    Attributes
    ----------
    name:
        ``"exact"`` or ``"float"`` (float backends may carry a custom tol in
        the name for debugging).
    tol:
        Absolute tolerance used by the comparison predicates.  Zero for the
        exact backend.
    """

    name: str
    tol: float

    @property
    def is_exact(self) -> bool:
        return self.tol == 0

    # -- conversion ------------------------------------------------------
    def scalar(self, x: Scalar):
        """Convert ``x`` into this backend's scalar type."""
        if self.is_exact:
            return as_fraction(x)
        return float(x)

    def scalars(self, xs: Iterable[Scalar]) -> list:
        return [self.scalar(x) for x in xs]

    # -- predicates ------------------------------------------------------
    def eq(self, a, b) -> bool:
        """``a == b`` up to tolerance."""
        if self.is_exact:
            return a == b
        return abs(a - b) <= self.tol

    def lt(self, a, b) -> bool:
        """Strict ``a < b`` beyond tolerance."""
        if self.is_exact:
            return a < b
        return a < b - self.tol

    def le(self, a, b) -> bool:
        """``a <= b`` up to tolerance."""
        return not self.lt(b, a)

    def gt(self, a, b) -> bool:
        return self.lt(b, a)

    def ge(self, a, b) -> bool:
        return self.le(b, a)

    def is_zero(self, a) -> bool:
        return self.eq(a, 0)

    def nonneg(self, a) -> bool:
        return self.ge(a, 0)

    # -- aggregation -----------------------------------------------------
    def total(self, xs: Sequence) -> Scalar:
        """Sum with the backend's scalar zero (Fraction(0) or 0.0)."""
        acc = self.scalar(0)
        for x in xs:
            acc = acc + x
        return acc


#: Exact Fraction backend (tolerance zero).
EXACT = Backend(name="exact", tol=0.0)

#: Default float backend.
FLOAT = Backend(name="float", tol=DEFAULT_TOL)


def make_float_backend(tol: float) -> Backend:
    """Build a float backend with a custom absolute tolerance.

    Sweeps over extreme weights (the lower-bound family pushes weights to
    1e-6..1e6) sometimes need a looser or tighter tol; this keeps the choice
    explicit at the call site instead of a module-level mutable default.
    """
    if not (tol > 0) or not math.isfinite(tol):
        raise ValueError(f"tolerance must be a positive finite float, got {tol!r}")
    return Backend(name=f"float(tol={tol:g})", tol=tol)
