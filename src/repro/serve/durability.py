"""Crash durability for the serving layer: WAL, snapshot, and recovery.

A ``kill -9`` of a plain ``repro-serve`` daemon loses three things: every
admitted-but-unanswered request, the canonical-fingerprint response cache,
and the accounting that says which was which.  This module is the
persistence substrate that makes all three survivable, built on the same
discipline as PR 3's sweep checkpoint journals
(:mod:`repro.runtime.checkpoint`): append-only JSON lines, floats as hex,
a structure-fingerprint-guarded header, and torn-tail recovery through the
*shared* :func:`repro.runtime.read_journal` reader -- the serve WAL does
not merely imitate the sweep journal's crash model, it runs the same code.

Two artifacts live in one durability directory:

* **the write-ahead request journal** (:class:`RequestJournal`,
  ``journal.wal``) -- every admitted solve request is appended as an
  ``admit`` record (monotonic sequence number, canonical fingerprint, the
  canonical graph payload in exact hex/frac encoding) *before* it is
  dispatched; when the solve terminates in a typed outcome, a ``settle``
  record is appended.  A restarted server replays the unsettled
  admissions through the normal solve path, so work the crash swallowed
  is finished and cached rather than lost.  The journal is compacted
  against its settles on rotation (settled records are dead weight; only
  the unsettled tail carries information).
* **the response-cache snapshot** (``cache.snap``) -- a periodic (and
  on-graceful-shutdown) bit-exact serialization of the response cache.
  Cache values are already exact JSON (hex floats, ``p/q`` fractions --
  :func:`repro.io.scalar_to_json`), so a dump/load round trip is
  byte-identical to a fresh solve by construction; the hypothesis suite
  asserts it anyway.  Snapshots are written atomically (tmp + fsync +
  rename) so a crash mid-snapshot leaves the previous snapshot intact.

Both artifacts carry a **structure fingerprint** folding in the wire
protocol version, the durability format, and the engine configuration
(solver / backend / zero-tol / engine) -- anything that could change
response bytes.  A mismatched journal refuses with a typed
:class:`~repro.exceptions.DurabilityError` (replaying foreign admissions
would solve them under the wrong engine); a mismatched snapshot is
*rejected and ignored* (cold cache, correct bytes) because a cache can
always be rebuilt but must never serve stale state.

Fsync policy (``fsync``):

* ``"always"`` -- flush + fsync every appended record: an admit is on
  disk before the dispatch it precedes, surviving both process death and
  OS crash (the default, and what the chaos gate runs);
* ``"batch"`` -- flush every record (survives process ``kill -9``; the
  bytes are in the OS page cache) but fsync only on rotation, snapshot,
  and close: the fast mode for process-crash-only threat models;
* ``"off"`` -- flush only, never fsync: benchmarking and tests.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from ..engine import EngineSpec
from ..exceptions import CheckpointError, DurabilityError, MalformedInputError
from ..runtime.checkpoint import read_journal

__all__ = [
    "DURABILITY_FORMAT",
    "FSYNC_POLICIES",
    "DurabilityConfig",
    "RequestJournal",
    "durability_fingerprint",
    "load_snapshot",
    "save_snapshot",
]

#: Bumped on incompatible journal/snapshot schema changes; part of the
#: structure fingerprint, so old state is rejected typed, not misparsed.
DURABILITY_FORMAT = 1

#: Legal ``fsync`` policies, strictest first (see module docstring).
FSYNC_POLICIES = ("always", "batch", "off")

_JOURNAL_NAME = "journal.wal"
_SNAPSHOT_NAME = "cache.snap"


def durability_fingerprint(spec: EngineSpec) -> str:
    """The structure fingerprint guarding journal and snapshot headers.

    Folds in everything that determines response *bytes* for a given
    canonical instance: the wire protocol version, the durability schema,
    and the engine configuration.  Deliberately excludes serving knobs
    (shards, batch sizes, cache size, deadlines) -- those change timing
    and capacity, never bytes, and a restart that tunes them must still
    reuse its journal.
    """
    from .protocol import PROTOCOL_VERSION

    return json.dumps({
        "protocol": PROTOCOL_VERSION,
        "durability_format": DURABILITY_FORMAT,
        "solver": spec.solver,
        "backend": spec.backend.name,
        "zero_tol": spec.zero_tol,
        "engine": spec.engine,
    }, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class DurabilityConfig:
    """Everything the durable serving layer needs, guard-validated.

    ``dir`` holds both artifacts (``journal.wal``, ``cache.snap``).
    ``snapshot_interval_s`` paces the periodic snapshot task;
    ``compact_min_settled`` is the rotation trigger (settle records
    appended since open before the journal is rewritten down to its
    unsettled admissions).
    """

    dir: str
    fsync: str = "always"
    snapshot_interval_s: float = 30.0
    compact_min_settled: int = 256

    @property
    def journal_path(self) -> Path:
        return Path(self.dir) / _JOURNAL_NAME

    @property
    def snapshot_path(self) -> Path:
        return Path(self.dir) / _SNAPSHOT_NAME

    def validated(self) -> "DurabilityConfig":
        """Boundary validation, :mod:`repro.guard` style: typed
        :class:`~repro.exceptions.MalformedInputError` for every way the
        config can be wrong, raised *before* a server starts accepting
        work it could not persist.  Creates ``dir`` (parents included)
        and probes it for writability as a side effect -- a read-only
        volume must fail here, not at the first admit."""
        if not isinstance(self.dir, (str, os.PathLike)) or not str(self.dir):
            raise MalformedInputError(
                f"durability dir must be a non-empty path, got {self.dir!r}")
        if self.fsync not in FSYNC_POLICIES:
            raise MalformedInputError(
                f"durability fsync policy {self.fsync!r} is not one of "
                f"{', '.join(FSYNC_POLICIES)}")
        interval = self.snapshot_interval_s
        if isinstance(interval, bool) or not isinstance(interval, (int, float)) \
                or not math.isfinite(interval) or interval <= 0:
            raise MalformedInputError(
                f"durability snapshot_interval_s must be a positive finite "
                f"number of seconds, got {interval!r}")
        if isinstance(self.compact_min_settled, bool) or \
                not isinstance(self.compact_min_settled, int) or \
                self.compact_min_settled < 1:
            raise MalformedInputError(
                f"durability compact_min_settled must be a positive integer, "
                f"got {self.compact_min_settled!r}")
        root = Path(self.dir)
        try:
            root.mkdir(parents=True, exist_ok=True)
            probe = root / ".write-probe"
            with open(probe, "w") as fh:
                fh.write("ok")
            probe.unlink()
        except OSError as exc:
            raise MalformedInputError(
                f"durability dir {str(root)!r} is not writable: {exc}"
            ) from exc
        return self


# ---------------------------------------------------------------------------
# the write-ahead request journal
# ---------------------------------------------------------------------------

class _Fsyncer:
    """One place for the three-policy fsync discipline."""

    __slots__ = ("policy",)

    def __init__(self, policy: str) -> None:
        self.policy = policy

    def record(self, fh) -> None:
        """After one appended record."""
        fh.flush()
        if self.policy == "always":
            os.fsync(fh.fileno())

    def barrier(self, fh) -> None:
        """At rotation / close / snapshot boundaries."""
        fh.flush()
        if self.policy != "off":
            os.fsync(fh.fileno())


def _fsync_dir(path: Path) -> None:
    """Make a rename durable (fsync the containing directory)."""
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class RequestJournal:
    """The write-ahead request journal: admit before dispatch, settle after.

    Record grammar (one JSON object per line after the header)::

        {"t": "a", "q": seq, "k": key_hex, "g": canon_dict[, "d": ms]}
        {"t": "s", "q": seq}

    ``q`` is a per-journal monotonic sequence number: admissions are
    journaled per *cell*, and with caching disabled two concurrent cells
    may legitimately share a canonical key, so settles reference the
    admission, not the instance.  ``g`` is the canonical graph dict whose
    scalars are already exact JSON (hex floats / ``p/q`` fractions), so
    the record round-trips bit-exactly through plain ``json``.

    Recovery semantics on :meth:`open` of an existing file:

    * torn final line -> dropped and physically truncated (the shared
      :func:`repro.runtime.read_journal` discipline);
    * duplicate settle / settle for an unknown sequence -> ignored (the
      settle append is not idempotence-guarded against crash-between-
      write-and-ack, so replays of it must be harmless);
    * corrupt mid-file line or foreign fingerprint -> typed
      :class:`~repro.exceptions.DurabilityError`, never a crash and never
      a silently partial resume;
    * surviving unsettled admissions -> :attr:`pending`, oldest first,
      for the server to replay through its normal solve path.

    Opening compacts the journal when it carries settle records (they are
    pure history); at runtime, rotation re-compacts after
    ``compact_min_settled`` settles.
    """

    def __init__(self, path: str | Path, fingerprint: str,
                 fsync: str = "always",
                 compact_min_settled: int = 256) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self._fsyncer = _Fsyncer(fsync)
        self.compact_min_settled = int(compact_min_settled)
        #: Unsettled admissions, seq -> record dict (insertion = age order).
        self.pending: dict[int, dict] = {}
        #: Settles appended since the last open/rotation (rotation trigger).
        self.settles_since_rotate = 0
        self._next_seq = 1
        self._fh = None

    # -- lifecycle --------------------------------------------------------

    @classmethod
    def open(cls, path: str | Path, fingerprint: str, fsync: str = "always",
             compact_min_settled: int = 256) -> "RequestJournal":
        journal = cls(path, fingerprint, fsync=fsync,
                      compact_min_settled=compact_min_settled)
        if journal.path.exists():
            journal._load_existing()
            if journal._had_settles:
                # Compaction on open: the settles were consumed building
                # ``pending``; rewriting now keeps recovery cost
                # proportional to the backlog, not the lifetime.
                journal._rewrite()
        else:
            journal.path.parent.mkdir(parents=True, exist_ok=True)
            with open(journal.path, "w") as fh:
                fh.write(journal._header_line())
                fh.flush()
                os.fsync(fh.fileno())
        journal._fh = open(journal.path, "a")
        return journal

    def _header_line(self) -> str:
        return json.dumps(
            {"format": DURABILITY_FORMAT, "kind": "repro-serve-wal",
             "fingerprint": self.fingerprint},
            separators=(",", ":")) + "\n"

    def _check_header(self, header: dict) -> None:
        if header.get("format") != DURABILITY_FORMAT or \
                header.get("kind") != "repro-serve-wal":
            raise DurabilityError(
                f"request journal {self.path} has format "
                f"{header.get('format')!r}/{header.get('kind')!r}; supported: "
                f"{DURABILITY_FORMAT}/'repro-serve-wal'")
        if header.get("fingerprint") != self.fingerprint:
            raise DurabilityError(
                f"request journal {self.path} belongs to a different serving "
                f"structure (fingerprint {header.get('fingerprint')!r} != "
                f"{self.fingerprint!r}); refusing to replay it")

    @staticmethod
    def _parse_record(obj) -> dict:
        if not isinstance(obj, dict):
            raise CheckpointError(f"journal record is not an object: {obj!r}")
        t = obj.get("t")
        if t == "a":
            seq, key = obj["q"], obj["k"]
            if not isinstance(seq, int) or isinstance(seq, bool) or seq < 1:
                raise CheckpointError(f"admit record has bad seq {seq!r}")
            if not isinstance(key, str) or not isinstance(obj.get("g"), dict):
                raise CheckpointError(f"admit record is malformed: {obj!r}")
            return obj
        if t == "s":
            seq = obj["q"]
            if not isinstance(seq, int) or isinstance(seq, bool) or seq < 1:
                raise CheckpointError(f"settle record has bad seq {seq!r}")
            return obj
        raise CheckpointError(f"unknown journal record type {t!r}")

    def _load_existing(self) -> None:
        try:
            _header, records = read_journal(
                self.path, self._parse_record, check_header=self._check_header)
        except CheckpointError as exc:
            # Typed at the serve layer: recovery code catches one family.
            raise DurabilityError(str(exc)) from exc
        self._had_settles = False
        for rec in records:
            if rec["t"] == "a":
                self.pending[rec["q"]] = rec
                self._next_seq = max(self._next_seq, rec["q"] + 1)
            else:
                # Duplicate settles and settles for already-compacted
                # admissions are both legal history; pop is forgiving.
                self.pending.pop(rec["q"], None)
                self._next_seq = max(self._next_seq, rec["q"] + 1)
                self._had_settles = True

    _had_settles = False

    def close(self) -> None:
        if self._fh is not None:
            self._fsyncer.barrier(self._fh)
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RequestJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- appends ----------------------------------------------------------

    def admit(self, key: bytes, canon_dict: dict,
              deadline_ms: Optional[float] = None) -> int:
        """Durably record one admission; returns its sequence number.

        Called *before* the cell is queued for dispatch: when this
        returns under ``fsync="always"``, a crash at any later point
        leaves a replayable record of the work.
        """
        if self._fh is None:
            raise DurabilityError(
                f"request journal {self.path} is not open for writing")
        seq = self._next_seq
        self._next_seq += 1
        rec: dict = {"t": "a", "q": seq, "k": key.hex(), "g": canon_dict}
        if deadline_ms is not None:
            # Deadlines are advisory on replay (the waiter is gone); kept
            # for forensics.  Hex-encoded like every float in a journal.
            rec["d"] = float(deadline_ms).hex()
        self._fh.write(json.dumps(rec, separators=(",", ":")) + "\n")
        self._fsyncer.record(self._fh)
        self.pending[seq] = rec
        return seq

    def settle(self, seq: int) -> bool:
        """Record that admission ``seq`` terminated in a typed outcome.

        Idempotent per sequence: double settles (a crash between the
        append and the caller observing it, a replayed cell racing a
        retry) write at most one record and never corrupt state.  Returns
        ``True`` when this call actually retired a pending admission.
        """
        if seq not in self.pending:
            return False
        if self._fh is None:
            raise DurabilityError(
                f"request journal {self.path} is not open for writing")
        self._fh.write(json.dumps({"t": "s", "q": seq},
                                  separators=(",", ":")) + "\n")
        self._fsyncer.record(self._fh)
        del self.pending[seq]
        self.settles_since_rotate += 1
        if self.settles_since_rotate >= self.compact_min_settled:
            self._rewrite()
        return True

    # -- compaction -------------------------------------------------------

    def _rewrite(self) -> None:
        """Rotate: atomically rewrite header + pending admissions only.

        The settled admit/settle pairs are pure history; dropping them
        bounds the journal at O(backlog).  Write-to-tmp + fsync + rename
        + dir fsync, so a crash at any instruction leaves either the old
        complete journal or the new complete journal.
        """
        if self._fh is not None:
            self._fsyncer.barrier(self._fh)
            self._fh.close()
            self._fh = None
        tmp = self.path.with_suffix(".tmp")
        with open(tmp, "w") as fh:
            fh.write(self._header_line())
            for rec in self.pending.values():
                fh.write(json.dumps(rec, separators=(",", ":")) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        _fsync_dir(self.path.parent)
        self.settles_since_rotate = 0
        self._fh = open(self.path, "a")

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.pending)

    def replay_items(self) -> list[tuple[int, bytes, dict]]:
        """Unsettled admissions as ``(seq, key, canon_dict)``, oldest first."""
        return [(seq, bytes.fromhex(rec["k"]), rec["g"])
                for seq, rec in self.pending.items()]


# ---------------------------------------------------------------------------
# response-cache snapshot / restore
# ---------------------------------------------------------------------------

def save_snapshot(path: str | Path, entries: list[tuple[bytes, dict]],
                  fingerprint: str) -> None:
    """Atomically write one cache snapshot (header + one line per entry).

    ``entries`` are ``(canonical_key, result_dict)`` pairs straight from
    :meth:`repro.serve.cache.ResponseCache.entries` -- result dicts whose
    scalars are already exact JSON, so the write is bit-exact with no
    re-encoding.  tmp + fsync + rename + dir fsync: a crash mid-snapshot
    leaves the previous snapshot untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".tmp")
    with open(tmp, "w") as fh:
        fh.write(json.dumps(
            {"format": DURABILITY_FORMAT, "kind": "repro-serve-snapshot",
             "fingerprint": fingerprint, "entries": len(entries)},
            separators=(",", ":")) + "\n")
        for key, value in entries:
            fh.write(json.dumps({"k": key.hex(), "v": value},
                                separators=(",", ":")) + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


def load_snapshot(path: str | Path,
                  fingerprint: str) -> Optional[list[tuple[bytes, dict]]]:
    """Load a cache snapshot; ``None`` when no snapshot exists.

    The fingerprint guard and mid-file corruption raise a typed
    :class:`~repro.exceptions.DurabilityError` -- the *caller* decides
    whether that is fatal (a test asserting state) or a cold start (the
    server, which can always rebuild a cache but must never serve stale
    bytes).  A torn final line is dropped via the shared torn-tail
    discipline -- unreachable for atomically-renamed snapshots, but the
    loader must not trust that every writer was ours.
    """
    path = Path(path)
    if not path.exists():
        return None

    def _check_header(header: dict) -> None:
        if header.get("format") != DURABILITY_FORMAT or \
                header.get("kind") != "repro-serve-snapshot":
            raise DurabilityError(
                f"cache snapshot {path} has format "
                f"{header.get('format')!r}/{header.get('kind')!r}; supported: "
                f"{DURABILITY_FORMAT}/'repro-serve-snapshot'")
        if header.get("fingerprint") != fingerprint:
            raise DurabilityError(
                f"cache snapshot {path} belongs to a different serving "
                f"structure (fingerprint {header.get('fingerprint')!r} != "
                f"{fingerprint!r}); refusing to restore it")

    def _parse(obj) -> tuple[bytes, dict]:
        if not isinstance(obj, dict) or not isinstance(obj.get("k"), str) \
                or not isinstance(obj.get("v"), dict):
            raise CheckpointError(f"snapshot entry is malformed: {obj!r}")
        return bytes.fromhex(obj["k"]), obj["v"]

    try:
        _header, entries = read_journal(path, _parse,
                                        check_header=_check_header)
    except CheckpointError as exc:
        raise DurabilityError(str(exc)) from exc
    except ValueError as exc:  # bytes.fromhex on a mangled mid-file key
        raise DurabilityError(
            f"cache snapshot {path} has a corrupt entry key: {exc}") from exc
    return entries
