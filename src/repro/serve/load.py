"""Seeded load generation and the soak harness behind ``repro-serve soak``.

The request mix models the traffic a shared allocation service actually
sees: a **heavy-tailed popularity** distribution over a pool of base
economies (a few economies dominate; the tail is long), with every hit on
a popular economy arriving under a *random relabelling* (rotation and/or
reflection of the ring) -- exactly the shape the canonical-fingerprint
cache exists for.  A small malformed-request fraction keeps the typed
error path under load, and a sampled **paranoid-audit leg** compares
served responses bit-for-bit against fresh single-shot
:mod:`repro.core` solves computed *before* the clock starts.

Everything is a pure function of the seed: the request list, the audited
subset, and the expected responses are all deterministic, so a soak run is
replayable and its counter totals are comparable across machines.  Wall
time is measured over a **fixed request count** (closed-loop clients), so
``wall_s`` in the emitted ``repro-bench`` report is a genuine regression
signal rather than a function of a time budget.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..graphs.builders import ring, random_ring
from ..io import graph_to_dict
from ..obs.bench import BENCH_FORMAT, _fingerprint
from .protocol import PROTOCOL_VERSION
from .server import ServeConfig, start_in_thread
from .solver import single_shot_response

__all__ = [
    "LoadConfig",
    "SOAK_BENCH_NAME",
    "build_requests",
    "build_report",
    "run_load",
    "run_soak",
]

#: The single benchmark name the soak emits; CI compares the committed
#: baseline and a fresh run under this exact key.
SOAK_BENCH_NAME = "serve_soak_mix"

#: Counters whose totals are a pure function of the request stream (cache
#: hit/miss/coalesce splits depend on arrival timing, so they are reported
#: as extras, never gated on).
DETERMINISTIC_COUNTERS = ("serve_requests", "serve_responses", "serve_errors")


@dataclass(frozen=True)
class LoadConfig:
    """One seeded soak workload (see module docstring for the mix)."""

    requests: int = 250
    clients: int = 8
    seed: int = 0
    pool: int = 12          #: distinct base economies
    zipf_s: float = 1.3     #: popularity exponent (higher = heavier head)
    n_min: int = 4
    n_max: int = 24
    malformed_rate: float = 0.02
    audit_rate: float = 0.1  #: fraction differentially audited


def _zipf_weights(k: int, s: float) -> np.ndarray:
    w = 1.0 / np.arange(1, k + 1, dtype=float) ** s
    return w / w.sum()


def _relabel(weights: list, rot: int, reflect: bool) -> list:
    out = list(reversed(weights)) if reflect else list(weights)
    return out[rot:] + out[:rot]


def build_requests(cfg: LoadConfig) -> list[dict]:
    """The deterministic request script: ``cfg.requests`` entries.

    Each entry::

        {"line": bytes,                  # exact wire bytes to send
         "id": int,
         "kind": "solve" | "malformed",
         "expect": result-dict | None,   # audited solves: exact expected result
         "expect_error": str | None}     # malformed: expected error.type

    Sizes, popularity ranks, relabellings, the malformed subset, and the
    audited subset are all drawn from one seeded generator, so two builds
    from the same config are byte-identical.
    """
    rng = np.random.default_rng(cfg.seed)
    sizes = cfg.n_min + rng.choice(
        cfg.n_max - cfg.n_min + 1,
        size=cfg.pool,
        p=_zipf_weights(cfg.n_max - cfg.n_min + 1, 1.0),
    )
    bases = [random_ring(int(n), rng, "loguniform", 0.1, 10.0) for n in sizes]
    popularity = _zipf_weights(cfg.pool, cfg.zipf_s)

    script: list[dict] = []
    for i in range(cfg.requests):
        if rng.random() < cfg.malformed_rate:
            flavor = int(rng.integers(2))
            if flavor == 0:
                payload = b'{"op": "frobnicate", "id": %d}' % i
            else:
                bad = {"op": "solve", "id": i,
                       "graph": {"n": 2, "edges": [[0, 1]],
                                 "weights": [{"float": "bogus"}, 1]}}
                payload = json.dumps(bad).encode("utf-8")
            script.append({
                "line": payload + b"\n", "id": i, "kind": "malformed",
                "expect": None, "expect_error": "MalformedInputError",
            })
            continue
        base = bases[int(rng.choice(cfg.pool, p=popularity))]
        rot = int(rng.integers(base.n))
        reflect = bool(rng.integers(2))
        g = ring(_relabel(list(base.weights), rot, reflect))
        req = {"op": "solve", "id": i, "graph": graph_to_dict(g)}
        expect = (single_shot_response(g)
                  if rng.random() < cfg.audit_rate else None)
        script.append({
            "line": json.dumps(req).encode("utf-8") + b"\n", "id": i,
            "kind": "solve", "expect": expect, "expect_error": None,
        })
    return script


async def _client(host: str, port: int, entries: list[dict],
                  latencies: list[float], problems: list[str]) -> None:
    """One closed-loop client: send, await the matching response, repeat."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for entry in entries:
            t0 = time.perf_counter()
            writer.write(entry["line"])
            await writer.drain()
            raw = await reader.readline()
            latencies.append(time.perf_counter() - t0)
            if not raw:
                problems.append(f"id={entry['id']}: connection dropped")
                return
            resp = json.loads(raw)
            _check(entry, resp, problems)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def _check(entry: dict, resp: dict, problems: list[str]) -> None:
    rid = entry["id"]
    if entry["kind"] == "malformed":
        # Envelope-level garbage answers with id=None (the id could not be
        # trusted); payload-level garbage echoes the id.  Either way the
        # response must be a typed error of the expected class.
        if resp.get("status") != "error":
            problems.append(f"id={rid}: malformed request answered {resp!r}")
        elif resp["error"]["type"] != entry["expect_error"]:
            problems.append(
                f"id={rid}: expected {entry['expect_error']}, "
                f"got {resp['error']['type']}")
        return
    if resp.get("id") != rid:
        problems.append(f"id={rid}: response carries id={resp.get('id')!r}")
        return
    if resp.get("status") != "ok":
        problems.append(f"id={rid}: unexpected error {resp.get('error')!r}")
        return
    if entry["expect"] is not None and resp["result"] != entry["expect"]:
        problems.append(
            f"id={rid}: served response differs from single-shot solve")


async def run_load(host: str, port: int, cfg: LoadConfig,
                   script: Optional[list[dict]] = None) -> dict:
    """Drive one soak against a running server; returns the load stats.

    ``script`` defaults to :func:`build_requests(cfg)`; pass it explicitly
    to amortize the build (and its audit solves) across runs.
    """
    if script is None:
        script = build_requests(cfg)
    clients = max(1, min(cfg.clients, len(script)))
    shards: list[list[dict]] = [script[i::clients] for i in range(clients)]
    latencies: list[float] = []
    problems: list[str] = []
    t0 = time.perf_counter()
    await asyncio.gather(
        *(_client(host, port, shard, latencies, problems) for shard in shards)
    )
    wall = time.perf_counter() - t0
    lat = np.sort(np.asarray(latencies, dtype=float)) * 1000.0
    audited = sum(1 for e in script if e["expect"] is not None)
    return {
        "requests": len(script),
        "responses": len(latencies),
        "clients": clients,
        "audited": audited,
        "problems": problems,
        "wall_s": wall,
        "throughput_rps": len(script) / wall if wall > 0 else 0.0,
        "latency_ms": {
            "p50": float(np.percentile(lat, 50)) if len(lat) else 0.0,
            "p90": float(np.percentile(lat, 90)) if len(lat) else 0.0,
            "p99": float(np.percentile(lat, 99)) if len(lat) else 0.0,
            "max": float(lat[-1]) if len(lat) else 0.0,
        },
    }


def build_report(tag: str, load_stats: dict, server_stats: dict,
                 cfg: LoadConfig, serve_config: ServeConfig) -> dict:
    """Soak results -> one ``repro-bench/1`` report (``BENCH_serve.json``).

    The ``counters`` block carries only the stream-deterministic serve
    counters (:data:`DETERMINISTIC_COUNTERS`), so ``repro-bench compare``
    sees zero counter drift across timing-different runs; latency,
    throughput, cache behavior, and the span breakdown ride along as
    extras.
    """
    counters = {k: server_stats.get(k, 0) for k in DETERMINISTIC_COUNTERS}
    bench = {
        "group": "serve",
        "wall_s": load_stats["wall_s"],
        "counters": counters,
        "phase_seconds": {},
        "spans": server_stats.get("spans", {}),
        "latency_ms": load_stats["latency_ms"],
        "throughput_rps": load_stats["throughput_rps"],
        "requests": load_stats["requests"],
        "clients": load_stats["clients"],
        "audited": load_stats["audited"],
        "problems": len(load_stats["problems"]),
        "cache": {
            "hits": server_stats.get("serve_cache_hits", 0),
            "misses": server_stats.get("serve_cache_misses", 0),
            "coalesced": server_stats.get("serve_coalesced", 0),
            "batches": server_stats.get("serve_batches", 0),
        },
        "serve_config": {
            "shards": serve_config.shards,
            "batch_max": serve_config.batch_max,
            "linger_ms": serve_config.linger_ms,
            "cache_size": serve_config.cache_size,
            "faults": serve_config.faults,
        },
        "load_config": {
            "requests": cfg.requests, "clients": cfg.clients,
            "seed": cfg.seed, "pool": cfg.pool, "zipf_s": cfg.zipf_s,
            "malformed_rate": cfg.malformed_rate,
            "audit_rate": cfg.audit_rate,
        },
    }
    return {
        "format": BENCH_FORMAT,
        "tag": tag,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "rounds": 1,
        "solver": serve_config.spec.solver,
        "fingerprint": _fingerprint(),
        "benchmarks": {SOAK_BENCH_NAME: bench},
        "totals": {"wall_s": bench["wall_s"], "counters": dict(counters)},
    }


def run_soak(serve_config: Optional[ServeConfig] = None,
             load_config: Optional[LoadConfig] = None,
             tag: str = "serve") -> dict:
    """Start a server, drive the seeded soak, return the bench report.

    The report's ``benchmarks[...].problems`` count must be zero for a
    healthy run; the CLI exits non-zero otherwise and prints each problem.
    The raw problem list rides on the returned dict under ``_problems``
    (stripped by ``save_report``'s JSON round-trip consumers via the
    underscore convention -- it is for the caller, not the baseline).
    """
    serve_config = serve_config if serve_config is not None else ServeConfig()
    load_config = load_config if load_config is not None else LoadConfig()
    script = build_requests(load_config)
    handle = start_in_thread(serve_config)
    try:
        stats = asyncio.run(
            run_load(serve_config.host, handle.port, load_config, script))
        server_stats = handle.server.stats()
    finally:
        handle.stop()
    report = build_report(tag, stats, server_stats, load_config, serve_config)
    report["_problems"] = stats["problems"]
    return report
