"""Seeded load generation and the soak harness behind ``repro-serve soak``.

The request mix models the traffic a shared allocation service actually
sees: a **heavy-tailed popularity** distribution over a pool of base
economies (a few economies dominate; the tail is long), with every hit on
a popular economy arriving under a *random relabelling* (rotation and/or
reflection of the ring) -- exactly the shape the canonical-fingerprint
cache exists for.  A small malformed-request fraction keeps the typed
error path under load, and a sampled **paranoid-audit leg** compares
served responses bit-for-bit against fresh single-shot
:mod:`repro.core` solves computed *before* the clock starts.

Everything is a pure function of the seed: the request list, the audited
subset, and the expected responses are all deterministic, so a soak run is
replayable and its counter totals are comparable across machines.  Wall
time is measured over a **fixed request count** (closed-loop clients), so
``wall_s`` in the emitted ``repro-bench`` report is a genuine regression
signal rather than a function of a time budget.

Two soaks share this machinery:

* :func:`run_soak` -- the sunny-path mix above (``repro-serve soak``,
  ``BENCH_serve.json``);
* :func:`run_overload` -- the resilience soak (``repro-serve overload``,
  ``BENCH_overload.json``): a **warm sub-capacity phase** that must shed
  nothing and audit bit-identically, then a **burst phase** driving
  ``clients * pipeline`` truly concurrent requests -- sized well past the
  intake queue plus a batch, so admission control *must* engage -- under
  a seeded chaos schedule (worker kills, numeric faults, slow-shard
  stalls) with per-request deadlines on a fraction of the stream.  The
  harness asserts the overload contract: the server stays live, the
  intake queue never exceeds its cap, and every request terminates in
  exactly one typed outcome (result / overloaded / deadline_exceeded /
  circuit-open / typed error).

Connections are **pipelined** when ``pipeline > 1``: each connection runs
a sender and a receiver concurrently with up to ``pipeline`` requests in
flight, matched FIFO (the server answers a connection's lines strictly in
order).  A closed loop of N connections can never hold more than N cells
in the server -- pipelining is what lets a burst genuinely exceed batcher
capacity instead of self-throttling on its own round trips.
"""

from __future__ import annotations

import asyncio
import collections
import json
import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..graphs.builders import ring, random_ring
from ..io import graph_to_dict
from ..obs.bench import BENCH_FORMAT, _fingerprint
from .protocol import PROTOCOL_VERSION
from .server import ServeConfig, start_in_thread
from .solver import single_shot_response

__all__ = [
    "LoadConfig",
    "OVERLOAD_BENCH_NAME",
    "OverloadConfig",
    "SOAK_BENCH_NAME",
    "build_chaos_spec",
    "build_overload_report",
    "build_report",
    "build_requests",
    "run_load",
    "run_overload",
    "run_soak",
]

#: The single benchmark name the soak emits; CI compares the committed
#: baseline and a fresh run under this exact key.
SOAK_BENCH_NAME = "serve_soak_mix"

#: Ditto for the overload soak (``BENCH_overload.json``).
OVERLOAD_BENCH_NAME = "serve_overload_chaos"

#: Counters whose totals are a pure function of the request stream (cache
#: hit/miss/coalesce splits depend on arrival timing, so they are reported
#: as extras, never gated on).
DETERMINISTIC_COUNTERS = ("serve_requests", "serve_responses", "serve_errors")

#: The typed terminal outcomes a solve request may have; the overload
#: harness requires every request to land in exactly one bucket.
OUTCOME_KEYS = ("ok", "overloaded", "deadline_exceeded", "circuit_open",
                "error")


@dataclass(frozen=True)
class LoadConfig:
    """One seeded soak workload (see module docstring for the mix)."""

    requests: int = 250
    clients: int = 8
    seed: int = 0
    pool: int = 12          #: distinct base economies
    zipf_s: float = 1.3     #: popularity exponent (higher = heavier head)
    n_min: int = 4
    n_max: int = 24
    malformed_rate: float = 0.02
    audit_rate: float = 0.1  #: fraction differentially audited
    #: Per-connection in-flight depth; 1 = the classic closed loop.
    pipeline: int = 1
    #: When set, this fraction of solve requests carries ``deadline_ms``.
    #: Deadline-carrying requests are never audited (a legitimate
    #: ``deadline_exceeded`` has no bit-exact expected result).
    deadline_ms: Optional[float] = None
    deadline_rate: float = 0.0


def _zipf_weights(k: int, s: float) -> np.ndarray:
    w = 1.0 / np.arange(1, k + 1, dtype=float) ** s
    return w / w.sum()


def _relabel(weights: list, rot: int, reflect: bool) -> list:
    out = list(reversed(weights)) if reflect else list(weights)
    return out[rot:] + out[:rot]


def build_requests(cfg: LoadConfig) -> list[dict]:
    """The deterministic request script: ``cfg.requests`` entries.

    Each entry::

        {"line": bytes,                  # exact wire bytes to send
         "id": int,
         "kind": "solve" | "malformed",
         "deadline": bool,               # carries a deadline_ms budget
         "expect": result-dict | None,   # audited solves: exact expected result
         "expect_error": str | None}     # malformed: expected error.type

    Sizes, popularity ranks, relabellings, the malformed subset, the
    deadline subset, and the audited subset are all drawn from one seeded
    generator, so two builds from the same config are byte-identical.
    """
    rng = np.random.default_rng(cfg.seed)
    sizes = cfg.n_min + rng.choice(
        cfg.n_max - cfg.n_min + 1,
        size=cfg.pool,
        p=_zipf_weights(cfg.n_max - cfg.n_min + 1, 1.0),
    )
    bases = [random_ring(int(n), rng, "loguniform", 0.1, 10.0) for n in sizes]
    popularity = _zipf_weights(cfg.pool, cfg.zipf_s)

    script: list[dict] = []
    for i in range(cfg.requests):
        if rng.random() < cfg.malformed_rate:
            flavor = int(rng.integers(2))
            if flavor == 0:
                payload = b'{"op": "frobnicate", "id": %d}' % i
            else:
                bad = {"op": "solve", "id": i,
                       "graph": {"n": 2, "edges": [[0, 1]],
                                 "weights": [{"float": "bogus"}, 1]}}
                payload = json.dumps(bad).encode("utf-8")
            script.append({
                "line": payload + b"\n", "id": i, "kind": "malformed",
                "deadline": False, "expect": None,
                "expect_error": "MalformedInputError",
            })
            continue
        base = bases[int(rng.choice(cfg.pool, p=popularity))]
        rot = int(rng.integers(base.n))
        reflect = bool(rng.integers(2))
        g = ring(_relabel(list(base.weights), rot, reflect))
        req = {"op": "solve", "id": i, "graph": graph_to_dict(g)}
        with_deadline = (cfg.deadline_ms is not None
                         and rng.random() < cfg.deadline_rate)
        if with_deadline:
            req["deadline_ms"] = cfg.deadline_ms
        expect = (single_shot_response(g)
                  if not with_deadline and rng.random() < cfg.audit_rate
                  else None)
        script.append({
            "line": json.dumps(req).encode("utf-8") + b"\n", "id": i,
            "kind": "solve", "deadline": with_deadline, "expect": expect,
            "expect_error": None,
        })
    return script


#: Connection-refused retry schedule for load clients racing a binding
#: server: capped-exponential delays off a 25 ms base, ~1.6 s worst case.
_CONNECT_ATTEMPTS = 8
_CONNECT_BASE_S = 0.025
_CONNECT_CAP_S = 0.4


async def _connect_retry(host: str, port: int):
    """``asyncio.open_connection`` that tolerates the startup race.

    Soak harnesses start the server and the load fleet near-concurrently
    (and the crash soak restarts the server *under* the fleet), so the
    first connect can land before the listener binds.  Refused/unreachable
    connects retry on a short capped-exponential schedule; anything still
    failing after the window propagates -- a server that never comes up
    must fail the harness, not hang it.
    """
    for attempt in range(_CONNECT_ATTEMPTS):
        try:
            return await asyncio.open_connection(host, port)
        except (ConnectionRefusedError, OSError):
            if attempt == _CONNECT_ATTEMPTS - 1:
                raise
            await asyncio.sleep(
                min(_CONNECT_BASE_S * (2.0 ** attempt), _CONNECT_CAP_S))
    raise AssertionError("unreachable")


async def _client(host: str, port: int, entries: list[dict],
                  latencies: list[float], problems: list[str],
                  outcomes: collections.Counter, pipeline: int = 1,
                  strict: bool = True) -> None:
    """One load connection: closed-loop, or pipelined when ``pipeline > 1``.

    Pipelining runs a sender and a receiver concurrently with at most
    ``pipeline`` requests in flight, matched FIFO -- valid because the
    server answers each connection's lines strictly in order.  This is
    what lets a burst's concurrency exceed the client count (a closed
    loop of N connections never holds more than N cells server-side).
    """
    reader, writer = await _connect_retry(host, port)
    try:
        if pipeline <= 1:
            for entry in entries:
                t0 = time.perf_counter()
                writer.write(entry["line"])
                await writer.drain()
                raw = await reader.readline()
                latencies.append(time.perf_counter() - t0)
                if not raw:
                    problems.append(f"id={entry['id']}: connection dropped")
                    return
                _check(entry, json.loads(raw), problems, outcomes, strict)
            return

        sem = asyncio.Semaphore(pipeline)
        inflight: collections.deque = collections.deque()
        dead = False

        async def sender() -> None:
            for entry in entries:
                await sem.acquire()
                if dead:
                    return
                inflight.append((entry, time.perf_counter()))
                writer.write(entry["line"])
                await writer.drain()  # blocks under read-gate backpressure

        async def receiver() -> None:
            nonlocal dead
            for _ in range(len(entries)):
                raw = await reader.readline()
                if not raw:
                    dead = True
                    for entry, _t0 in inflight:
                        problems.append(
                            f"id={entry['id']}: connection dropped")
                    # Unblock a sender parked on the semaphore.
                    for _ in range(pipeline):
                        sem.release()
                    return
                entry, t0 = inflight.popleft()
                latencies.append(time.perf_counter() - t0)
                sem.release()
                _check(entry, json.loads(raw), problems, outcomes, strict)

        await asyncio.gather(sender(), receiver())
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def _check(entry: dict, resp: dict, problems: list[str],
           outcomes: collections.Counter, strict: bool = True) -> None:
    """Classify one response into its typed terminal outcome.

    ``strict`` is the sunny-path contract (any shed / deadline / error on
    a solve is a problem); the overload harness passes ``strict=False``,
    where typed overload outcomes are expected *but protocol violations
    still are problems*: wrong ids, untyped errors, sheds without a
    ``retry_after_ms`` hint, deadline verdicts on requests that carried no
    deadline, and audit mismatches.
    """
    rid = entry["id"]
    if entry["kind"] == "malformed":
        # Envelope-level garbage answers with id=None (the id could not be
        # trusted); payload-level garbage echoes the id.  Either way the
        # response must be a typed error of the expected class.
        if resp.get("status") != "error":
            problems.append(f"id={rid}: malformed request answered {resp!r}")
        elif resp["error"]["type"] != entry["expect_error"]:
            problems.append(
                f"id={rid}: expected {entry['expect_error']}, "
                f"got {resp['error']['type']}")
        return
    if resp.get("id") != rid:
        problems.append(f"id={rid}: response carries id={resp.get('id')!r}")
        return
    if resp.get("status") == "ok":
        outcomes["ok"] += 1
        if entry["expect"] is not None and resp["result"] != entry["expect"]:
            problems.append(
                f"id={rid}: served response differs from single-shot solve")
        return
    error = resp.get("error") or {}
    type_name = error.get("type")
    if type_name == "OverloadedError":
        outcomes["overloaded"] += 1
        if error.get("retry_after_ms") is None:
            problems.append(f"id={rid}: shed without a retry_after_ms hint")
        elif strict:
            problems.append(f"id={rid}: shed in a sub-capacity run")
        return
    if type_name == "CircuitOpenError":
        outcomes["circuit_open"] += 1
        if error.get("retry_after_ms") is None:
            problems.append(
                f"id={rid}: circuit-open without a retry_after_ms hint")
        elif strict:
            problems.append(f"id={rid}: circuit open in a sub-capacity run")
        return
    if type_name == "DeadlineExceededError":
        outcomes["deadline_exceeded"] += 1
        if not entry["deadline"]:
            problems.append(
                f"id={rid}: deadline_exceeded for a request with no deadline")
        return
    outcomes["error"] += 1
    if strict:
        problems.append(f"id={rid}: unexpected error {error!r}")


async def run_load(host: str, port: int, cfg: LoadConfig,
                   script: Optional[list[dict]] = None,
                   strict: bool = True) -> dict:
    """Drive one soak against a running server; returns the load stats.

    ``script`` defaults to :func:`build_requests(cfg)`; pass it explicitly
    to amortize the build (and its audit solves) across runs.  ``strict``
    flows into :func:`_check` -- the overload burst phase relaxes it so
    typed shed/deadline outcomes classify instead of failing the run.
    """
    if script is None:
        script = build_requests(cfg)
    clients = max(1, min(cfg.clients, len(script)))
    shards: list[list[dict]] = [script[i::clients] for i in range(clients)]
    latencies: list[float] = []
    problems: list[str] = []
    outcomes: collections.Counter = collections.Counter()
    t0 = time.perf_counter()
    await asyncio.gather(
        *(_client(host, port, shard, latencies, problems, outcomes,
                  pipeline=max(1, cfg.pipeline), strict=strict)
          for shard in shards)
    )
    wall = time.perf_counter() - t0
    lat = np.sort(np.asarray(latencies, dtype=float)) * 1000.0
    audited = sum(1 for e in script if e["expect"] is not None)
    solves = sum(1 for e in script if e["kind"] == "solve")
    # The exactly-one-outcome contract, client-side half: every solve line
    # sent produced exactly one classified terminal response.
    classified = sum(outcomes.values())
    if classified != solves:
        problems.append(
            f"outcome accounting broken: {solves} solve requests but "
            f"{classified} classified outcomes {dict(outcomes)}")
    return {
        "requests": len(script),
        "responses": len(latencies),
        "clients": clients,
        "pipeline": max(1, cfg.pipeline),
        "audited": audited,
        "problems": problems,
        "outcomes": {k: outcomes.get(k, 0) for k in OUTCOME_KEYS},
        "wall_s": wall,
        "throughput_rps": len(script) / wall if wall > 0 else 0.0,
        "latency_ms": {
            "p50": float(np.percentile(lat, 50)) if len(lat) else 0.0,
            "p90": float(np.percentile(lat, 90)) if len(lat) else 0.0,
            "p99": float(np.percentile(lat, 99)) if len(lat) else 0.0,
            "max": float(lat[-1]) if len(lat) else 0.0,
        },
    }


def build_report(tag: str, load_stats: dict, server_stats: dict,
                 cfg: LoadConfig, serve_config: ServeConfig) -> dict:
    """Soak results -> one ``repro-bench/1`` report (``BENCH_serve.json``).

    The ``counters`` block carries only the stream-deterministic serve
    counters (:data:`DETERMINISTIC_COUNTERS`), so ``repro-bench compare``
    sees zero counter drift across timing-different runs; latency,
    throughput, cache behavior, and the span breakdown ride along as
    extras.
    """
    counters = {k: server_stats.get(k, 0) for k in DETERMINISTIC_COUNTERS}
    bench = {
        "group": "serve",
        "wall_s": load_stats["wall_s"],
        "counters": counters,
        "phase_seconds": {},
        "spans": server_stats.get("spans", {}),
        "latency_ms": load_stats["latency_ms"],
        "throughput_rps": load_stats["throughput_rps"],
        "requests": load_stats["requests"],
        "clients": load_stats["clients"],
        "audited": load_stats["audited"],
        "problems": len(load_stats["problems"]),
        "cache": {
            "hits": server_stats.get("serve_cache_hits", 0),
            "misses": server_stats.get("serve_cache_misses", 0),
            "coalesced": server_stats.get("serve_coalesced", 0),
            "batches": server_stats.get("serve_batches", 0),
        },
        "serve_config": {
            "shards": serve_config.shards,
            "batch_max": serve_config.batch_max,
            "linger_ms": serve_config.linger_ms,
            "cache_size": serve_config.cache_size,
            "faults": serve_config.faults,
        },
        "load_config": {
            "requests": cfg.requests, "clients": cfg.clients,
            "seed": cfg.seed, "pool": cfg.pool, "zipf_s": cfg.zipf_s,
            "malformed_rate": cfg.malformed_rate,
            "audit_rate": cfg.audit_rate,
        },
    }
    return {
        "format": BENCH_FORMAT,
        "tag": tag,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "rounds": 1,
        "solver": serve_config.spec.solver,
        "fingerprint": _fingerprint(),
        "benchmarks": {SOAK_BENCH_NAME: bench},
        "totals": {"wall_s": bench["wall_s"], "counters": dict(counters)},
    }


def run_soak(serve_config: Optional[ServeConfig] = None,
             load_config: Optional[LoadConfig] = None,
             tag: str = "serve") -> dict:
    """Start a server, drive the seeded soak, return the bench report.

    The report's ``benchmarks[...].problems`` count must be zero for a
    healthy run; the CLI exits non-zero otherwise and prints each problem.
    The raw problem list rides on the returned dict under ``_problems``
    (stripped by ``save_report``'s JSON round-trip consumers via the
    underscore convention -- it is for the caller, not the baseline).
    """
    serve_config = serve_config if serve_config is not None else ServeConfig()
    load_config = load_config if load_config is not None else LoadConfig()
    script = build_requests(load_config)
    handle = start_in_thread(serve_config)
    try:
        stats = asyncio.run(
            run_load(serve_config.host, handle.port, load_config, script))
        server_stats = handle.server.stats()
    finally:
        handle.stop()
    report = build_report(tag, stats, server_stats, load_config, serve_config)
    report["_problems"] = stats["problems"]
    return report


# ---------------------------------------------------------------------------
# the overload / chaos soak (``repro-serve overload``)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OverloadConfig:
    """The resilience soak: a warm sub-capacity leg, then a chaos burst.

    ``burst_clients`` is the real overload knob: server-side concurrency
    equals the number of connections (each connection has one request in
    the server at a time), so the burst is sized
    ``burst_clients >= 2 * (queue_cap + batch_max)`` -- twice what the
    intake queue plus one in-flight batch can absorb -- making admission
    control engage *arithmetically*, not by timing luck.  ``pipeline``
    additionally keeps every connection's next requests already in socket
    buffers, so the read-gate backpressure path is exercised too.
    """

    warm_requests: int = 32
    warm_clients: int = 2
    burst_requests: int = 192
    burst_clients: int = 48
    pipeline: int = 4
    seed: int = 0
    pool: int = 10          #: distinct base economies
    n_min: int = 4
    n_max: int = 12
    deadline_ms: float = 1500.0
    deadline_rate: float = 0.25  #: fraction of burst requests with deadlines
    audit_rate: float = 0.3      #: warm-leg differential-audit fraction
    chaos: bool = True           #: drive the burst under a seeded fault plan


def build_chaos_spec(seed: int) -> str:
    """One seeded chaos schedule as a runtime fault spec.

    Drawn from the established ``site:kind@n`` grammar
    (:mod:`repro.runtime.faults`): a worker kill (hard ``os._exit``), a
    slow-shard stall (``cell:delay``), a retryable cell crash, and a
    numeric fault that drives the precision-escalation ladder.  Fault
    rules fire per supervised dispatch (each flush installs a fresh
    injector), so the schedule recurs across the whole burst rather than
    firing once -- and because the positions come from one seeded
    generator, two runs of the same seed replay the identical schedule.
    """
    rng = np.random.default_rng(seed + 20_260_809)
    clauses = [
        f"worker:kill@{int(rng.integers(0, 3))}",
        f"cell:delay@{int(rng.integers(0, 4))}:0.08",
        f"cell:exc@{int(rng.integers(0, 4))}",
        f"flow:nan@{int(rng.integers(2, 8))}",
    ]
    return ";".join(clauses)


def _overload_invariants(server_stats: dict, sent_requests: int,
                         load_stats: dict, problems: list[str],
                         leg: str) -> dict:
    """Check the overload contract against one leg's final server stats.

    Returns the invariant observations for the report; violations append
    to ``problems``.  The server-side half of exactly-one accounting is
    checkable from counters alone because every op except ``solve``
    bypasses these counters entirely.
    """
    c = {k: server_stats.get(k, 0) for k in (
        "serve_requests", "serve_responses", "serve_errors", "serve_shed",
        "serve_deadline_exceeded")}
    admission = server_stats.get("admission", {})
    peak = admission.get("peak_depth", 0)
    cap = admission.get("queue_cap", 0)
    terminal = (c["serve_responses"] + c["serve_errors"] + c["serve_shed"]
                + c["serve_deadline_exceeded"])
    if c["serve_requests"] != sent_requests:
        problems.append(
            f"{leg}: server saw {c['serve_requests']} solve requests, "
            f"harness sent {sent_requests}")
    if c["serve_requests"] != terminal:
        problems.append(
            f"{leg}: exactly-one-outcome accounting broken: "
            f"{c['serve_requests']} requests != {terminal} terminal "
            f"outcomes ({c})")
    if peak > cap:
        problems.append(
            f"{leg}: intake queue exceeded its cap: peak_depth={peak} > "
            f"queue_cap={cap}")
    if load_stats["responses"] != load_stats["requests"]:
        problems.append(
            f"{leg}: {load_stats['requests']} requests sent but "
            f"{load_stats['responses']} responses received")
    return {
        "counters": c,
        "terminal_outcomes": terminal,
        "peak_depth": peak,
        "queue_cap": cap,
        "read_pauses": server_stats.get("serve_read_pauses", 0),
    }


def run_overload(serve_config: Optional[ServeConfig] = None,
                 overload_config: Optional[OverloadConfig] = None,
                 tag: str = "overload") -> dict:
    """The chaos-scheduled overload soak; returns the bench report.

    Two legs, each against its own server built from ``serve_config``:

    1. **warm** (fault-free, strict, sub-capacity): every response is a
       result, zero requests shed, audited responses bit-identical to
       single-shot solves -- the "overload machinery is invisible below
       capacity" half of the contract;
    2. **burst** (chaos fault plan, ``burst_clients`` concurrent
       connections, deadlines on a fraction of the stream): admission
       control, deadline propagation, and the breakers under fire -- the
       harness asserts the server stays live (a fresh connection pings
       after the burst), the intake queue never exceeds its cap, and
       every request terminates in exactly one typed outcome.

    Violations ride on the returned report under ``_problems`` (and the
    ``problems`` count inside the benchmark body, which CI gates on).
    """
    from ..runtime import RuntimePolicy

    ocfg = (overload_config if overload_config is not None
            else OverloadConfig())
    # retries=2 matters: the chaos schedule injects retryable faults
    # (kills, crashes) on first attempts, and the whole point is watching
    # the retry/escalation ladder absorb them under load.
    base = serve_config if serve_config is not None else ServeConfig(
        shards=2, batch_max=8, linger_ms=1.0, cache_size=0, queue_cap=16,
        policy=RuntimePolicy(retries=2, timeout=60.0))
    from dataclasses import replace as _replace

    chaos_spec = build_chaos_spec(ocfg.seed) if ocfg.chaos else base.faults
    warm_config = _replace(base, faults=None)
    burst_config = _replace(base, faults=chaos_spec)
    problems: list[str] = []

    # -- leg 1: warm, sub-capacity, strict ---------------------------------
    warm_load = LoadConfig(
        requests=ocfg.warm_requests, clients=ocfg.warm_clients,
        seed=ocfg.seed, pool=ocfg.pool, n_min=ocfg.n_min, n_max=ocfg.n_max,
        malformed_rate=0.0, audit_rate=ocfg.audit_rate, pipeline=1)
    handle = start_in_thread(warm_config)
    try:
        warm_stats = asyncio.run(run_load(
            warm_config.host, handle.port, warm_load, strict=True))
        warm_server_stats = handle.server.stats()
    finally:
        handle.stop()
    problems.extend(warm_stats["problems"])
    warm_inv = _overload_invariants(
        warm_server_stats, ocfg.warm_requests, warm_stats, problems, "warm")
    if warm_inv["counters"]["serve_shed"] != 0:
        problems.append(
            f"warm: sub-capacity leg shed "
            f"{warm_inv['counters']['serve_shed']} requests")

    # -- leg 2: burst past capacity, under chaos ---------------------------
    burst_load = LoadConfig(
        requests=ocfg.burst_requests, clients=ocfg.burst_clients,
        seed=ocfg.seed + 1, pool=ocfg.pool, n_min=ocfg.n_min,
        n_max=ocfg.n_max, malformed_rate=0.0, audit_rate=0.0,
        pipeline=ocfg.pipeline, deadline_ms=ocfg.deadline_ms,
        deadline_rate=ocfg.deadline_rate)
    handle = start_in_thread(burst_config)
    try:
        burst_stats = asyncio.run(run_load(
            burst_config.host, handle.port, burst_load, strict=False))
        # Liveness: a *fresh* connection must still be answered after the
        # burst -- the whole point of shedding is surviving it.
        from .client import Client

        probe = Client(handle.port)
        try:
            pong = probe.rpc({"op": "ping", "id": "liveness"})
            if pong.get("status") != "ok":
                problems.append(f"burst: post-burst ping failed: {pong!r}")
        finally:
            probe.close()
        burst_server_stats = handle.server.stats()
    finally:
        handle.stop()
    problems.extend(burst_stats["problems"])
    burst_inv = _overload_invariants(
        burst_server_stats, ocfg.burst_requests, burst_stats, problems,
        "burst")
    overloadable = 2 * (base.queue_cap + base.batch_max)
    if ocfg.burst_clients >= overloadable and \
            burst_stats["outcomes"]["overloaded"] == 0:
        problems.append(
            f"burst: {ocfg.burst_clients} concurrent connections against "
            f"queue_cap={base.queue_cap} shed nothing -- overload never "
            "engaged")

    report = build_overload_report(
        tag, warm_stats, warm_inv, burst_stats, burst_inv,
        burst_server_stats, ocfg, burst_config, problems)
    report["_problems"] = problems
    return report


def build_overload_report(tag: str, warm_stats: dict, warm_inv: dict,
                          burst_stats: dict, burst_inv: dict,
                          burst_server_stats: dict, ocfg: OverloadConfig,
                          serve_config: ServeConfig,
                          problems: list[str]) -> dict:
    """Overload soak results -> one ``repro-bench/1`` report.

    Gated counters are the stream-deterministic ``serve_requests`` only
    (shed / deadline / breaker counts are genuinely timing-dependent --
    that is the point of the soak); everything else rides as extras:
    goodput, shed rate, outcome histogram, breaker activity, admission
    peaks.
    """
    total_requests = warm_stats["requests"] + burst_stats["requests"]
    counters = {"serve_requests": (
        warm_inv["counters"]["serve_requests"]
        + burst_inv["counters"]["serve_requests"])}
    wall = warm_stats["wall_s"] + burst_stats["wall_s"]
    burst_ok = burst_stats["outcomes"]["ok"]
    bench = {
        "group": "serve",
        "wall_s": wall,
        "counters": counters,
        "phase_seconds": {"warm": warm_stats["wall_s"],
                          "burst": burst_stats["wall_s"]},
        "spans": burst_server_stats.get("spans", {}),
        "latency_ms": burst_stats["latency_ms"],
        "warm_latency_ms": warm_stats["latency_ms"],
        "throughput_rps": burst_stats["throughput_rps"],
        "goodput_rps": (burst_ok / burst_stats["wall_s"]
                        if burst_stats["wall_s"] > 0 else 0.0),
        "shed_rate": (burst_stats["outcomes"]["overloaded"]
                      / burst_stats["requests"]
                      if burst_stats["requests"] else 0.0),
        "outcomes": burst_stats["outcomes"],
        "warm_outcomes": warm_stats["outcomes"],
        "requests": total_requests,
        "problems": len(problems),
        "invariants": {"warm": warm_inv, "burst": burst_inv},
        "breakers": burst_server_stats.get("breakers", {}),
        "chaos": serve_config.faults,
        "serve_config": {
            "shards": serve_config.shards,
            "batch_max": serve_config.batch_max,
            "linger_ms": serve_config.linger_ms,
            "cache_size": serve_config.cache_size,
            "queue_cap": serve_config.queue_cap,
            "faults": serve_config.faults,
        },
        "overload_config": {
            "warm_requests": ocfg.warm_requests,
            "warm_clients": ocfg.warm_clients,
            "burst_requests": ocfg.burst_requests,
            "burst_clients": ocfg.burst_clients,
            "pipeline": ocfg.pipeline,
            "seed": ocfg.seed,
            "deadline_ms": ocfg.deadline_ms,
            "deadline_rate": ocfg.deadline_rate,
            "chaos": ocfg.chaos,
        },
    }
    return {
        "format": BENCH_FORMAT,
        "tag": tag,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "rounds": 1,
        "solver": serve_config.spec.solver,
        "fingerprint": _fingerprint(),
        "benchmarks": {OVERLOAD_BENCH_NAME: bench},
        "totals": {"wall_s": wall, "counters": dict(counters)},
    }
