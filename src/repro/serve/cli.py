"""``repro-serve``: run, supervise, load-test, and soak the daemon.

Seven subcommands::

    repro-serve serve [--port P] [--shards N] [--batch-max K] [--linger MS]
                      [--cache-size N] [--timeout S] [--retries N]
                      [--inject-faults SPEC] [--queue-cap N]
                      [--deadline-ms MS] [--breaker-threshold N]
                      [--breaker-cooldown S]
        Run the daemon in the foreground until a client sends ``shutdown``
        or the process receives SIGTERM/SIGINT -- the first signal starts
        a graceful drain-and-stop, a second one hard-exits.  ``--port 0``
        binds an ephemeral port and prints it.

    repro-serve load --port P [--requests N] [--clients N] [--seed S] ...
        Drive the seeded heavy-tailed mix against an already-running
        server; prints latency percentiles and any response problems.

    repro-serve soak [--out BENCH_serve.json] [server + load flags]
        Start a server, run the full seeded soak (including the sampled
        differential-audit leg), and write a ``repro-bench/1`` report.
        Exits non-zero if any response was dropped, corrupted, or differed
        from its fresh single-shot solve -- the CI gate.

    repro-serve overload [--out BENCH_overload.json] [--seed S]
                         [--burst-clients N] [--burst-requests N] ...
        The resilience soak: a fault-free sub-capacity warm leg (must
        shed nothing, audits bit-identical), then a chaos-scheduled burst
        sized past admission capacity.  Writes ``BENCH_overload.json``
        and exits non-zero on any overload-contract violation (server
        died, queue exceeded its cap, a request without exactly one typed
        terminal outcome, a shed below capacity).

    repro-serve supervise --port P [--durable DIR] [server flags]
                          [--heartbeat S] [--max-crash-loops N]
        Watchdog: run the daemon as a supervised child at a fixed port,
        restarting it (capped-exponential backoff) when it exits or stops
        answering pings; exits 3 after a crash loop.  With ``--durable``
        each incarnation resumes the journal/snapshot state.

    repro-serve stats --port P
        Print one stats call against a running server (includes the
        ``durability`` block and the ``restarts`` gauge).

    repro-serve durable [--out BENCH_durable.json] [--kill-after N] ...
        The crash soak: a supervised durable server is SIGKILLed
        mid-traffic while resilient clients keep driving requests.
        Exits non-zero unless every request terminated in exactly one
        typed outcome with responses bit-identical to a crash-free run,
        the restarts gauge saw every kill, and the journal drained empty.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
import threading
from typing import Optional

from ..exceptions import CrashLoopError
from ..obs.bench import save_report
from ..runtime import RuntimePolicy
from .client import Client
from .crash import DURABLE_BENCH_NAME, DurableConfig, run_durable
from .durability import DurabilityConfig
from .load import (
    OVERLOAD_BENCH_NAME,
    SOAK_BENCH_NAME,
    LoadConfig,
    OverloadConfig,
    run_load,
    run_overload,
    run_soak,
)
from .server import ServeConfig, start_in_thread
from .supervise import SuperviseConfig, Supervisor, serve_child_argv

__all__ = ["main"]


def _add_server_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="listen port (0 = ephemeral, printed at startup)")
    p.add_argument("--shards", type=int, default=2,
                   help="worker shard processes (0 = solve in-process)")
    p.add_argument("--batch-max", type=int, default=16)
    p.add_argument("--linger", type=float, default=2.0, metavar="MS",
                   help="batching window in milliseconds")
    p.add_argument("--cache-size", type=int, default=1024,
                   help="response/decomposition cache size (0 disables "
                        "caching AND coalescing for deterministic counters)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-cell wall timeout in seconds")
    p.add_argument("--retries", type=int, default=2)
    p.add_argument("--inject-faults", default=None, metavar="SPEC",
                   help="deterministic fault spec, e.g. worker:kill@0")
    p.add_argument("--queue-cap", type=int, default=256,
                   help="admission control: max queued cells before "
                        "requests shed with a typed overloaded envelope")
    p.add_argument("--deadline-ms", type=float, default=None,
                   help="default per-request deadline budget applied when "
                        "a request carries none (unset = unbounded)")
    p.add_argument("--breaker-threshold", type=int, default=3,
                   help="consecutive bad shard dispatches before the "
                        "circuit breaker trips into degraded mode")
    p.add_argument("--breaker-cooldown", type=float, default=1.0,
                   metavar="S", help="base open-window cooldown in seconds "
                   "(doubles per trip, capped at 30s)")
    p.add_argument("--durable", default=None, metavar="DIR",
                   help="crash durability directory: write-ahead-journal "
                        "every admission and snapshot the response cache "
                        "there; on restart, restore the snapshot and replay "
                        "unsettled admissions")
    p.add_argument("--fsync", default="always",
                   choices=["always", "batch", "off"],
                   help="journal fsync policy (with --durable): 'always' "
                        "fsyncs every record, 'batch' only at rotation/"
                        "snapshot boundaries, 'off' never")
    p.add_argument("--snapshot-interval", type=float, default=30.0,
                   metavar="S", help="seconds between response-cache "
                   "snapshots (with --durable)")


def _add_load_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--requests", type=int, default=250)
    p.add_argument("--clients", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--pool", type=int, default=12)
    p.add_argument("--zipf-s", type=float, default=1.3)
    p.add_argument("--malformed-rate", type=float, default=0.02)
    p.add_argument("--audit-rate", type=float, default=0.1)
    p.add_argument("--pipeline", type=int, default=1,
                   help="per-connection in-flight depth (1 = closed loop)")


def _serve_config(args: argparse.Namespace) -> ServeConfig:
    policy = RuntimePolicy(timeout=args.timeout, retries=args.retries)
    durability = None
    if getattr(args, "durable", None) is not None:
        durability = DurabilityConfig(
            dir=args.durable, fsync=args.fsync,
            snapshot_interval_s=args.snapshot_interval).validated()
    return ServeConfig(
        host=args.host, port=args.port, shards=args.shards,
        batch_max=args.batch_max, linger_ms=args.linger,
        cache_size=args.cache_size, policy=policy,
        faults=args.inject_faults, queue_cap=args.queue_cap,
        default_deadline_ms=args.deadline_ms,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        durability=durability,
    )


def _load_config(args: argparse.Namespace) -> LoadConfig:
    return LoadConfig(
        requests=args.requests, clients=args.clients, seed=args.seed,
        pool=args.pool, zipf_s=args.zipf_s,
        malformed_rate=args.malformed_rate, audit_rate=args.audit_rate,
        pipeline=args.pipeline,
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="batched allocation-as-a-service daemon",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the daemon in the foreground")
    _add_server_flags(serve)

    load = sub.add_parser("load", help="drive load at a running server")
    load.add_argument("--host", default="127.0.0.1")
    load.add_argument("--port", type=int, required=True)
    _add_load_flags(load)

    soak = sub.add_parser(
        "soak", help="server + seeded soak + repro-bench report")
    _add_server_flags(soak)
    _add_load_flags(soak)
    soak.add_argument("--out", default="BENCH_serve.json")
    soak.add_argument("--tag", default="serve")

    overload = sub.add_parser(
        "overload",
        help="warm + chaos-burst resilience soak + repro-bench report")
    overload.add_argument("--seed", type=int, default=0)
    overload.add_argument("--warm-requests", type=int, default=32)
    overload.add_argument("--warm-clients", type=int, default=2)
    overload.add_argument("--burst-requests", type=int, default=192)
    overload.add_argument("--burst-clients", type=int, default=48)
    overload.add_argument("--pipeline", type=int, default=4)
    overload.add_argument("--queue-cap", type=int, default=16)
    overload.add_argument("--shards", type=int, default=2)
    overload.add_argument("--batch-max", type=int, default=8)
    overload.add_argument("--deadline-ms", type=float, default=1500.0)
    overload.add_argument("--deadline-rate", type=float, default=0.25)
    overload.add_argument("--no-chaos", action="store_true",
                          help="skip the fault plan (pure overload burst)")
    overload.add_argument("--out", default="BENCH_overload.json")
    overload.add_argument("--tag", default="overload")

    supervise = sub.add_parser(
        "supervise",
        help="watchdog: run the daemon as a supervised child, restarting "
             "it on crash or hang (requires a fixed --port)")
    _add_server_flags(supervise)
    supervise.add_argument("--heartbeat", type=float, default=1.0,
                           metavar="S", help="seconds between liveness pings")
    supervise.add_argument("--heartbeat-misses", type=int, default=3,
                           help="consecutive missed pings before the child "
                                "is declared hung and restarted")
    supervise.add_argument("--restart-backoff", type=float, default=0.2,
                           metavar="S", help="base restart backoff (doubles "
                           "per consecutive crash, capped at 5s)")
    supervise.add_argument("--max-crash-loops", type=int, default=5,
                           help="consecutive fast crashes tolerated before "
                                "the supervisor gives up (exit 3)")

    stats = sub.add_parser(
        "stats", help="one stats call against a running server")
    stats.add_argument("--host", default="127.0.0.1")
    stats.add_argument("--port", type=int, required=True)

    durable = sub.add_parser(
        "durable",
        help="crash soak: supervised durable server + SIGKILL schedule + "
             "repro-bench report")
    durable.add_argument("--requests", type=int, default=80)
    durable.add_argument("--clients", type=int, default=4)
    durable.add_argument("--seed", type=int, default=0)
    durable.add_argument("--kill-after", type=int, default=12,
                         help="SIGKILL the daemon after this many completed "
                              "responses (per kill)")
    durable.add_argument("--kills", type=int, default=1)
    durable.add_argument("--fsync", default="always",
                         choices=["always", "batch", "off"])
    durable.add_argument("--snapshot-interval", type=float, default=2.0,
                         metavar="S")
    durable.add_argument("--shards", type=int, default=1)
    durable.add_argument("--out", default="BENCH_durable.json")
    durable.add_argument("--tag", default="durable")
    return parser


def _print_stats(stats: dict) -> None:
    lat = stats["latency_ms"]
    print(f"{stats['responses']}/{stats['requests']} responses "
          f"({stats['clients']} clients, {stats['audited']} audited), "
          f"{stats['throughput_rps']:.1f} req/s, "
          f"p50 {lat['p50']:.2f}ms  p90 {lat['p90']:.2f}ms  "
          f"p99 {lat['p99']:.2f}ms  max {lat['max']:.2f}ms")
    for problem in stats["problems"]:
        print(f"PROBLEM: {problem}", file=sys.stderr)


def _run_serve_foreground(args: argparse.Namespace) -> int:
    """The ``serve`` subcommand: foreground daemon with signal handling.

    The first SIGTERM/SIGINT starts a graceful shutdown (drain in-flight
    work, close the listener, join the server thread); a second signal
    while that drain is still running hard-exits with the conventional
    128+signum status -- an operator hammering Ctrl-C must always win
    over a wedged drain.
    """
    signals_seen = {"count": 0}
    stop_requested = threading.Event()

    def _on_signal(signum, frame) -> None:
        signals_seen["count"] += 1
        if signals_seen["count"] >= 2:
            print(f"repro-serve: second signal ({signum}), hard exit",
                  file=sys.stderr, flush=True)
            # os._exit semantics via raise_default: restore and re-raise so
            # the exit status carries the signal.
            signal.signal(signum, signal.SIG_DFL)
            signal.raise_signal(signum)
            return
        print(f"repro-serve: signal {signum}, draining for graceful stop "
              "(send again to hard-exit)", file=sys.stderr, flush=True)
        stop_requested.set()

    # Handlers go in *before* the listener binds and the banner prints:
    # process managers signal on their own clock, and a SIGTERM landing in
    # the gap between "listening" and installation used to hit the default
    # disposition -- killing the process with work on the wire.
    old_term = signal.signal(signal.SIGTERM, _on_signal)
    old_int = signal.signal(signal.SIGINT, _on_signal)
    try:
        handle = start_in_thread(_serve_config(args))
        print(f"repro-serve listening on {args.host}:{handle.port} "
              f"(shards={args.shards}, cache={args.cache_size}, "
              f"queue_cap={args.queue_cap})", flush=True)
        # Wake on either: the server thread exiting (client-issued
        # shutdown op) or a signal requesting one.
        while handle.thread.is_alive() and not stop_requested.is_set():
            stop_requested.wait(0.2)
        if stop_requested.is_set():
            handle.stop()
        else:
            handle.thread.join()
    finally:
        signal.signal(signal.SIGTERM, old_term)
        signal.signal(signal.SIGINT, old_int)
    print("repro-serve: stopped", flush=True)
    return 0


def _child_flags(args: argparse.Namespace) -> list[str]:
    """Re-encode parsed server flags as the supervised child's argv."""
    extra = [
        "--shards", str(args.shards),
        "--batch-max", str(args.batch_max),
        "--linger", str(args.linger),
        "--cache-size", str(args.cache_size),
        "--retries", str(args.retries),
        "--queue-cap", str(args.queue_cap),
        "--breaker-threshold", str(args.breaker_threshold),
        "--breaker-cooldown", str(args.breaker_cooldown),
    ]
    if args.timeout is not None:
        extra += ["--timeout", str(args.timeout)]
    if args.inject_faults is not None:
        extra += ["--inject-faults", args.inject_faults]
    if args.deadline_ms is not None:
        extra += ["--deadline-ms", str(args.deadline_ms)]
    if args.durable is not None:
        extra += ["--durable", args.durable, "--fsync", args.fsync,
                  "--snapshot-interval", str(args.snapshot_interval)]
    return extra


def _run_supervise(args: argparse.Namespace) -> int:
    """The ``supervise`` subcommand: watchdog in the foreground.

    Needs a fixed ``--port`` -- clients (and the watchdog's own pings)
    must find every incarnation at the same address.  First SIGTERM/
    SIGINT stops the watchdog gracefully (which TERMs the child into its
    own drain); a second signal hard-exits.  A crash loop exits 3.
    """
    if args.port == 0:
        print("repro-serve supervise: --port must be a fixed nonzero port "
              "(every incarnation must bind the same address)",
              file=sys.stderr)
        return 2
    supervisor = Supervisor(
        serve_child_argv(args.host, args.port, _child_flags(args)),
        args.host, args.port,
        SuperviseConfig(
            heartbeat_s=args.heartbeat,
            heartbeat_misses=args.heartbeat_misses,
            backoff_base_s=args.restart_backoff,
            max_crash_loops=args.max_crash_loops,
        ))
    signals_seen = {"count": 0}

    def _on_signal(signum, frame) -> None:
        signals_seen["count"] += 1
        if signals_seen["count"] >= 2:
            signal.signal(signum, signal.SIG_DFL)
            signal.raise_signal(signum)
            return
        print(f"repro-serve supervise: signal {signum}, stopping watchdog "
              "(send again to hard-exit)", file=sys.stderr, flush=True)
        supervisor.stop()

    old_term = signal.signal(signal.SIGTERM, _on_signal)
    old_int = signal.signal(signal.SIGINT, _on_signal)
    try:
        print(f"repro-serve supervise: watching {args.host}:{args.port} "
              f"(heartbeat {args.heartbeat}s, give up after "
              f"{args.max_crash_loops} crash loops)", flush=True)
        supervisor.run()
    except CrashLoopError as exc:
        print(f"repro-serve supervise: {exc}", file=sys.stderr)
        return 3
    finally:
        signal.signal(signal.SIGTERM, old_term)
        signal.signal(signal.SIGINT, old_int)
    print(f"repro-serve supervise: stopped "
          f"(restarts={supervisor.restarts})", flush=True)
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "serve":
        return _run_serve_foreground(args)

    if args.command == "supervise":
        return _run_supervise(args)

    if args.command == "stats":
        client = Client(args.port, args.host)
        try:
            resp = client.rpc({"op": "stats"})
        finally:
            client.close()
        print(json.dumps(resp.get("result", resp), indent=2, sort_keys=True))
        return 0 if resp.get("status") == "ok" else 1

    if args.command == "durable":
        report = run_durable(DurableConfig(
            requests=args.requests, clients=args.clients, seed=args.seed,
            kill_after=args.kill_after, kills=args.kills, fsync=args.fsync,
            snapshot_interval_s=args.snapshot_interval, shards=args.shards,
        ), tag=args.tag)
        problems = report.pop("_problems")
        bench = report["benchmarks"][DURABLE_BENCH_NAME]
        save_report(report, args.out)
        lat = bench["latency_ms"]
        print(f"wrote {args.out}: {bench['requests']} requests through "
              f"{len(bench['kills'])} SIGKILL(s), outcomes {bench['outcomes']}, "
              f"restarts {bench['restarts']}, "
              f"client retries {bench['client_retries']}, "
              f"p50 {lat['p50']:.2f}ms  p99 {lat['p99']:.2f}ms, "
              f"problems {len(problems)}")
        for problem in problems:
            print(f"PROBLEM: {problem}", file=sys.stderr)
        return 1 if problems else 0

    if args.command == "load":
        stats = asyncio.run(run_load(args.host, args.port, _load_config(args)))
        _print_stats(stats)
        return 1 if stats["problems"] else 0

    if args.command == "overload":
        serve_config = ServeConfig(
            shards=args.shards, batch_max=args.batch_max, linger_ms=1.0,
            cache_size=0, queue_cap=args.queue_cap,
            policy=RuntimePolicy(retries=2, timeout=60.0))
        overload_config = OverloadConfig(
            warm_requests=args.warm_requests, warm_clients=args.warm_clients,
            burst_requests=args.burst_requests,
            burst_clients=args.burst_clients, pipeline=args.pipeline,
            seed=args.seed, deadline_ms=args.deadline_ms,
            deadline_rate=args.deadline_rate, chaos=not args.no_chaos)
        report = run_overload(serve_config, overload_config, tag=args.tag)
        problems = report.pop("_problems")
        bench = report["benchmarks"][OVERLOAD_BENCH_NAME]
        save_report(report, args.out)
        lat = bench["latency_ms"]
        print(f"wrote {args.out}: {bench['requests']} requests "
              f"(warm {bench['warm_outcomes']['ok']} ok / "
              f"burst {bench['outcomes']}), "
              f"shed rate {bench['shed_rate']:.2f}, "
              f"goodput {bench['goodput_rps']:.1f} ok/s, "
              f"p50 {lat['p50']:.2f}ms  p99 {lat['p99']:.2f}ms, "
              f"problems {len(problems)}")
        for problem in problems:
            print(f"PROBLEM: {problem}", file=sys.stderr)
        return 1 if problems else 0

    # soak
    report = run_soak(_serve_config(args), _load_config(args), tag=args.tag)
    problems = report.pop("_problems")
    bench = report["benchmarks"][SOAK_BENCH_NAME]
    save_report(report, args.out)
    lat = bench["latency_ms"]
    print(f"wrote {args.out}: {bench['requests']} requests, "
          f"{bench['throughput_rps']:.1f} req/s, "
          f"p50 {lat['p50']:.2f}ms  p99 {lat['p99']:.2f}ms, "
          f"cache hits {bench['cache']['hits']} "
          f"(coalesced {bench['cache']['coalesced']}), "
          f"audited {bench['audited']}, problems {len(problems)}")
    for problem in problems:
        print(f"PROBLEM: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
