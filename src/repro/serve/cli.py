"""``repro-serve``: run, load-test, and soak the allocation daemon.

Three subcommands::

    repro-serve serve [--port P] [--shards N] [--batch-max K] [--linger MS]
                      [--cache-size N] [--timeout S] [--retries N]
                      [--inject-faults SPEC]
        Run the daemon in the foreground until a client sends ``shutdown``
        (or SIGINT).  ``--port 0`` binds an ephemeral port and prints it.

    repro-serve load --port P [--requests N] [--clients N] [--seed S] ...
        Drive the seeded heavy-tailed mix against an already-running
        server; prints latency percentiles and any response problems.

    repro-serve soak [--out BENCH_serve.json] [server + load flags]
        Start a server, run the full seeded soak (including the sampled
        differential-audit leg), and write a ``repro-bench/1`` report.
        Exits non-zero if any response was dropped, corrupted, or differed
        from its fresh single-shot solve -- the CI gate.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Optional

from ..obs.bench import save_report
from ..runtime import RuntimePolicy
from .load import SOAK_BENCH_NAME, LoadConfig, run_load, run_soak
from .server import ServeConfig, start_in_thread

__all__ = ["main"]


def _add_server_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="listen port (0 = ephemeral, printed at startup)")
    p.add_argument("--shards", type=int, default=2,
                   help="worker shard processes (0 = solve in-process)")
    p.add_argument("--batch-max", type=int, default=16)
    p.add_argument("--linger", type=float, default=2.0, metavar="MS",
                   help="batching window in milliseconds")
    p.add_argument("--cache-size", type=int, default=1024,
                   help="response/decomposition cache size (0 disables "
                        "caching AND coalescing for deterministic counters)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-cell wall timeout in seconds")
    p.add_argument("--retries", type=int, default=2)
    p.add_argument("--inject-faults", default=None, metavar="SPEC",
                   help="deterministic fault spec, e.g. worker:kill@0")


def _add_load_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--requests", type=int, default=250)
    p.add_argument("--clients", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--pool", type=int, default=12)
    p.add_argument("--zipf-s", type=float, default=1.3)
    p.add_argument("--malformed-rate", type=float, default=0.02)
    p.add_argument("--audit-rate", type=float, default=0.1)


def _serve_config(args: argparse.Namespace) -> ServeConfig:
    policy = RuntimePolicy(timeout=args.timeout, retries=args.retries)
    return ServeConfig(
        host=args.host, port=args.port, shards=args.shards,
        batch_max=args.batch_max, linger_ms=args.linger,
        cache_size=args.cache_size, policy=policy,
        faults=args.inject_faults,
    )


def _load_config(args: argparse.Namespace) -> LoadConfig:
    return LoadConfig(
        requests=args.requests, clients=args.clients, seed=args.seed,
        pool=args.pool, zipf_s=args.zipf_s,
        malformed_rate=args.malformed_rate, audit_rate=args.audit_rate,
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="batched allocation-as-a-service daemon",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the daemon in the foreground")
    _add_server_flags(serve)

    load = sub.add_parser("load", help="drive load at a running server")
    load.add_argument("--host", default="127.0.0.1")
    load.add_argument("--port", type=int, required=True)
    _add_load_flags(load)

    soak = sub.add_parser(
        "soak", help="server + seeded soak + repro-bench report")
    _add_server_flags(soak)
    _add_load_flags(soak)
    soak.add_argument("--out", default="BENCH_serve.json")
    soak.add_argument("--tag", default="serve")
    return parser


def _print_stats(stats: dict) -> None:
    lat = stats["latency_ms"]
    print(f"{stats['responses']}/{stats['requests']} responses "
          f"({stats['clients']} clients, {stats['audited']} audited), "
          f"{stats['throughput_rps']:.1f} req/s, "
          f"p50 {lat['p50']:.2f}ms  p90 {lat['p90']:.2f}ms  "
          f"p99 {lat['p99']:.2f}ms  max {lat['max']:.2f}ms")
    for problem in stats["problems"]:
        print(f"PROBLEM: {problem}", file=sys.stderr)


def main(argv: Optional[list[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "serve":
        handle = start_in_thread(_serve_config(args))
        print(f"repro-serve listening on {args.host}:{handle.port} "
              f"(shards={args.shards}, cache={args.cache_size})", flush=True)
        try:
            handle.thread.join()
        except KeyboardInterrupt:
            handle.stop()
        return 0

    if args.command == "load":
        stats = asyncio.run(run_load(args.host, args.port, _load_config(args)))
        _print_stats(stats)
        return 1 if stats["problems"] else 0

    # soak
    report = run_soak(_serve_config(args), _load_config(args), tag=args.tag)
    problems = report.pop("_problems")
    bench = report["benchmarks"][SOAK_BENCH_NAME]
    save_report(report, args.out)
    lat = bench["latency_ms"]
    print(f"wrote {args.out}: {bench['requests']} requests, "
          f"{bench['throughput_rps']:.1f} req/s, "
          f"p50 {lat['p50']:.2f}ms  p99 {lat['p99']:.2f}ms, "
          f"cache hits {bench['cache']['hits']} "
          f"(coalesced {bench['cache']['coalesced']}), "
          f"audited {bench['audited']}, problems {len(problems)}")
    for problem in problems:
        print(f"PROBLEM: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
