"""The crash-durability soak behind ``repro-serve durable``.

The acceptance gate for the durable serving stack: a supervised daemon is
SIGKILLed mid-traffic -- deliberately including mid-flush, since the kill
fires while worker dispatches are in flight -- the watchdog restarts it
into the same journal/snapshot state, and a fleet of
:class:`~repro.serve.client.ResilientClient` threads keeps driving
requests through the outage.  The contract asserted:

* **every request terminates in exactly one typed outcome**, across the
  crash: a client either got its result or a typed error, never a hang,
  never a double-count;
* **responses are bit-identical to a crash-free run**: every request in
  the script carries its pre-computed single-shot expected result
  (``audit_rate=1.0``), and every ``ok`` response must equal it exactly
  -- a restarted server serving from a restored snapshot or a replayed
  journal must be indistinguishable *in bytes* from one that never died;
* **the lineage recovered**: the ``restarts`` gauge reached the kill
  count, and after a final drain the request journal is empty
  (``journal_depth == 0`` -- nothing admitted was left unsettled).

The run is strict: with failover-grade retry budgets, every request is
expected to end ``ok``; any typed non-ok terminal outcome is a problem.
The emitted ``repro-bench/1`` report (``BENCH_durable.json``) gates
``wall_s`` only -- crash timing makes every counter non-deterministic, so
``counters`` is deliberately empty and correctness is carried by the
``problems`` count (which must be zero).
"""

from __future__ import annotations

import collections
import json
import socket
import tempfile
import threading
import time
from dataclasses import dataclass

import numpy as np

from ..exceptions import CrashLoopError, ReproError
from ..obs.bench import BENCH_FORMAT, _fingerprint
from .client import Client, ResilientClient
from .durability import DurabilityConfig
from .load import OUTCOME_KEYS, LoadConfig, build_requests
from .supervise import SuperviseConfig, Supervisor, serve_child_argv

__all__ = ["DURABLE_BENCH_NAME", "DurableConfig", "run_durable"]

#: The single benchmark name the crash soak emits (``BENCH_durable.json``).
DURABLE_BENCH_NAME = "serve_durable_crash"


@dataclass(frozen=True)
class DurableConfig:
    """One seeded crash soak: traffic shape, kill schedule, durability."""

    requests: int = 80
    clients: int = 4
    seed: int = 0
    pool: int = 10
    n_min: int = 4
    n_max: int = 12
    #: SIGKILL the daemon after this many completed responses (per kill).
    kill_after: int = 12
    kills: int = 1
    fsync: str = "always"
    snapshot_interval_s: float = 2.0
    shards: int = 1
    #: Per-request retry budget; generous because requests in flight when
    #: the kill lands must survive the whole restart window.
    max_attempts: int = 12


def _free_port(host: str) -> int:
    """An ephemeral port for the supervised child to bind.

    The child needs a *fixed* port (clients reconnect to it across
    restarts), so the usual bind-at-zero trick happens here and the port
    is released for the child.  The reuse race is real but tiny, and a
    lost race fails loudly (bind error -> supervisor crash loop).
    """
    with socket.socket() as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


def _drive(client: ResilientClient, entries: list[dict],
           outcomes: collections.Counter, problems: list[str],
           latencies: list[float], lock: threading.Lock,
           progress: list[int]) -> None:
    """One client thread: every entry to exactly one typed outcome."""
    for entry in entries:
        graph = json.loads(entry["line"])["graph"]
        t0 = time.perf_counter()
        try:
            result = client.solve(graph, req_id=entry["id"])
        except ReproError as exc:
            with lock:
                outcomes[_bucket(type(exc).__name__)] += 1
                problems.append(
                    f"id={entry['id']}: terminated "
                    f"{type(exc).__name__}: {exc}")
                progress[0] += 1
            continue
        except (ConnectionError, OSError) as exc:
            with lock:
                outcomes["error"] += 1
                problems.append(
                    f"id={entry['id']}: transport never recovered: {exc}")
                progress[0] += 1
            continue
        elapsed = time.perf_counter() - t0
        with lock:
            outcomes["ok"] += 1
            latencies.append(elapsed)
            progress[0] += 1
            if result != entry["expect"]:
                problems.append(
                    f"id={entry['id']}: response differs from the "
                    f"crash-free single-shot solve")


def _bucket(type_name: str) -> str:
    return {
        "OverloadedError": "overloaded",
        "CircuitOpenError": "circuit_open",
        "DeadlineExceededError": "deadline_exceeded",
    }.get(type_name, "error")


def _killer(supervisor: Supervisor, cfg: DurableConfig, lock: threading.Lock,
            progress: list[int], done: threading.Event,
            kill_log: list[dict]) -> None:
    """SIGKILL the child each time another ``kill_after`` responses land."""
    for k in range(cfg.kills):
        target = (k + 1) * cfg.kill_after
        while not done.is_set():
            with lock:
                reached = progress[0] >= target
            if reached:
                break
            time.sleep(0.005)
        if done.is_set():
            return
        # The trigger may fire while the previous incarnation is still
        # dying or being restarted: a no-op "kill" (no live child) or a
        # re-kill of the same dying pid must not count toward the
        # restarts-gauge assertion.  Retry until a *fresh* incarnation
        # took the SIGKILL -- or the run finishes without one.
        killed = {entry["pid"] for entry in kill_log}
        pid = None
        while not done.is_set():
            pid = supervisor.kill_child()
            if pid is not None and pid not in killed:
                break
            pid = None
            time.sleep(0.01)
        if pid is None:
            return
        kill_log.append({"kill": k + 1, "after_responses": target,
                         "pid": pid})


def run_durable(cfg: DurableConfig | None = None, tag: str = "durable",
                durability_dir: str | None = None) -> dict:
    """Run the crash soak; returns the ``repro-bench/1`` report.

    The problem list rides on ``_problems`` (the underscore convention:
    for the caller, stripped from saved baselines).
    """
    cfg = cfg if cfg is not None else DurableConfig()
    host = "127.0.0.1"
    port = _free_port(host)
    tmp = None
    if durability_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-durable-")
        durability_dir = tmp.name
    # Validate up front -- the child would also refuse, but a bad config
    # must fail in the harness with the typed error, not as a crash loop.
    DurabilityConfig(dir=durability_dir, fsync=cfg.fsync,
                     snapshot_interval_s=cfg.snapshot_interval_s).validated()

    script = build_requests(LoadConfig(
        requests=cfg.requests, clients=cfg.clients, seed=cfg.seed,
        pool=cfg.pool, n_min=cfg.n_min, n_max=cfg.n_max,
        malformed_rate=0.0, audit_rate=1.0))
    assert all(e["expect"] is not None for e in script)

    argv = serve_child_argv(host, port, [
        "--shards", str(cfg.shards),
        "--durable", durability_dir,
        "--fsync", cfg.fsync,
        "--snapshot-interval", str(cfg.snapshot_interval_s),
        "--queue-cap", str(max(4 * cfg.requests, 256)),
    ])
    supervisor = Supervisor(argv, host, port, SuperviseConfig(
        heartbeat_s=0.25, heartbeat_misses=8, ping_timeout_s=2.0,
        backoff_base_s=0.1, backoff_cap_s=1.0, max_crash_loops=5,
        healthy_after_s=2.0, startup_grace_s=30.0))

    lock = threading.Lock()
    outcomes: collections.Counter = collections.Counter()
    problems: list[str] = []
    latencies: list[float] = []
    progress = [0]
    done = threading.Event()
    kill_log: list[dict] = []

    sup_error: list[BaseException] = []

    def _supervise() -> None:
        try:
            supervisor.run()
        except CrashLoopError as exc:
            sup_error.append(exc)

    sup_thread = threading.Thread(target=_supervise, name="durable-supervisor",
                                  daemon=True)
    sup_thread.start()
    try:
        if not supervisor.wait_ready(30.0):
            raise RuntimeError(
                "supervised repro-serve child never became ready")

        shards = [script[i::cfg.clients] for i in range(cfg.clients)]
        clients = [
            ResilientClient(
                endpoints=[(host, port)], max_attempts=cfg.max_attempts,
                backoff_base_ms=25.0, backoff_cap_ms=500.0,
                socket_timeout=120.0, seed=cfg.seed + 1000 + i)
            for i in range(cfg.clients)
        ]
        threads = [
            threading.Thread(
                target=_drive,
                args=(clients[i], shards[i], outcomes, problems, latencies,
                      lock, progress),
                name=f"durable-client-{i}", daemon=True)
            for i in range(cfg.clients)
        ]
        killer = threading.Thread(
            target=_killer,
            args=(supervisor, cfg, lock, progress, done, kill_log),
            name="durable-killer", daemon=True)
        t0 = time.perf_counter()
        killer.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t0
        done.set()
        killer.join()
        for c in clients:
            c.close()

        # Post-crash verification against the final incarnation: drain,
        # then the journal must be empty (every admission settled) and
        # the restarts gauge must have seen every kill.
        post = Client(port, host, timeout=60.0)
        try:
            post.rpc({"op": "drain"})
            stats = post.rpc({"op": "stats"})["result"]
        finally:
            post.close()
        restarts = stats.get("restarts", 0)
        depth = stats.get("durability", {}).get("journal_depth")
        if restarts < len(kill_log):
            problems.append(
                f"restarts gauge {restarts} < kills delivered "
                f"{len(kill_log)}: the supervisor lost track of a restart")
        if depth != 0:
            problems.append(
                f"journal_depth {depth!r} after final drain: admitted "
                f"work was left unsettled")
    finally:
        supervisor.stop()
        sup_thread.join(30.0)
        if tmp is not None:
            tmp.cleanup()
    if sup_error:
        problems.append(f"supervisor gave up: {sup_error[0]}")

    classified = sum(outcomes.values())
    if classified != cfg.requests:
        problems.append(
            f"outcome accounting broken: {cfg.requests} requests but "
            f"{classified} classified outcomes {dict(outcomes)}")

    total_retries = sum(c.retries for c in clients)
    total_reconnects = sum(c.reconnects for c in clients)
    lat = np.sort(np.asarray(latencies, dtype=float)) * 1000.0
    bench = {
        "group": "serve",
        "wall_s": wall,
        # Crash timing perturbs every counter (replays, retries, cache
        # splits); the gate is wall_s + the problems count, never drift.
        "counters": {},
        "phase_seconds": {},
        "requests": cfg.requests,
        "clients": cfg.clients,
        "outcomes": {k: outcomes.get(k, 0) for k in OUTCOME_KEYS},
        "kills": kill_log,
        "restarts": restarts,
        "client_retries": total_retries,
        "client_reconnects": total_reconnects,
        "problems": len(problems),
        "latency_ms": {
            "p50": float(np.percentile(lat, 50)) if len(lat) else 0.0,
            "p90": float(np.percentile(lat, 90)) if len(lat) else 0.0,
            "p99": float(np.percentile(lat, 99)) if len(lat) else 0.0,
            "max": float(lat[-1]) if len(lat) else 0.0,
        },
        "durable_config": {
            "requests": cfg.requests, "clients": cfg.clients,
            "seed": cfg.seed, "kill_after": cfg.kill_after,
            "kills": cfg.kills, "fsync": cfg.fsync,
            "snapshot_interval_s": cfg.snapshot_interval_s,
            "shards": cfg.shards,
        },
    }
    report = {
        "format": BENCH_FORMAT,
        "tag": tag,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "rounds": 1,
        "solver": "auto",
        "fingerprint": _fingerprint(),
        "benchmarks": {DURABLE_BENCH_NAME: bench},
        "totals": {"wall_s": bench["wall_s"], "counters": {}},
    }
    report["_problems"] = problems
    return report
