"""Overload semantics for the serving layer: shed, bound, time out, degrade.

PR 7's daemon worked on the sunny path only: the intake queue was
unbounded, requests carried no deadline, and a sick shard degraded every
flush forever.  This module holds the three mechanisms that make the
front-end production-shaped, each deliberately tiny and event-loop-local
(no locks -- every mutation happens on the server's loop thread):

* **admission control** (:class:`AdmissionController`) -- a bounded
  intake queue with explicit load shedding.  A request that would push
  the queue past ``queue_cap`` is answered with a typed ``overloaded``
  envelope carrying a ``retry_after_ms`` hint (never a dropped socket,
  never an unbounded queue), where the hint is the flush-duration EWMA
  scaled by the backlog in flushes.  Below the cap, a high/low-watermark
  *read gate* additionally pauses connection reads for backpressure --
  TCP receive windows fill and well-behaved clients slow down before any
  shedding starts;
* **deadline bookkeeping** (:class:`Deadline`) -- the per-request
  ``deadline_ms`` budget as an absolute event-loop timestamp, flowed
  request -> coalesced cell (earliest waiter wins) -> batch linger ->
  ``supervised_map`` per-cell budget;
* **circuit breaking** (:class:`ShardBreaker`) -- per-shard health from
  dispatch outcomes (supervisor-level failures, worker kills, cell
  timeouts, precision escalations).  ``threshold`` consecutive bad
  dispatches trip the breaker into a *degraded mode ladder* -- first
  trip: serial-guarded in-process solving (no worker process to kill);
  second: straight to the exact ``Fraction`` backend (skips the failing
  float attempts); third and later: cache-only brownout (front-end cache
  hits still serve, misses fast-fail with a typed ``CircuitOpenError``).
  Each open window lasts a capped-exponential cooldown, after which
  exactly one *half-open probe* dispatch runs in normal mode: a clean
  probe closes the breaker, a bad one re-trips it one rung further down
  the ladder with a doubled cooldown.

Everything here is pure bookkeeping over injected clocks (``now`` is
always a parameter), so the unit tests drive the full state space without
sleeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "AdmissionController",
    "BreakerConfig",
    "Deadline",
    "earliest",
    "MODE_CACHE_ONLY",
    "MODE_EXACT",
    "MODE_NORMAL",
    "MODE_SERIAL",
    "ShardBreaker",
]

#: Dispatch modes, healthiest first.  ``normal`` is the supervised worker
#: pool; the other three are the breaker's degraded ladder in order.
MODE_NORMAL = "normal"
MODE_SERIAL = "serial"
MODE_EXACT = "exact"
MODE_CACHE_ONLY = "cache_only"

#: Ladder position by trip count (1-based; deeper trips stay cache-only).
_LADDER = (MODE_SERIAL, MODE_EXACT, MODE_CACHE_ONLY)


# ---------------------------------------------------------------------------
# deadlines
# ---------------------------------------------------------------------------

@dataclass
class Deadline:
    """One request's absolute deadline on the event-loop clock.

    ``at`` is a ``loop.time()`` timestamp (CLOCK_MONOTONIC on CPython/
    Linux, i.e. directly comparable with ``time.monotonic()`` in executor
    threads -- which is what lets the budget flow into
    :func:`repro.runtime.supervised_map` unconverted).
    """

    at: float

    @classmethod
    def from_ms(cls, now: float, deadline_ms: float) -> "Deadline":
        return cls(at=now + deadline_ms / 1000.0)

    def remaining(self, now: float) -> float:
        """Seconds left; negative once expired."""
        return self.at - now

    def expired(self, now: float) -> bool:
        return now >= self.at


def earliest(a: Optional[Deadline], b: Optional[Deadline]) -> Optional[Deadline]:
    """The tighter of two optional deadlines (coalesced cells honor the
    earliest deadline among their waiters)."""
    if a is None:
        return b
    if b is None:
        return a
    return a if a.at <= b.at else b


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------

class AdmissionController:
    """Bounded-intake bookkeeping: shed decisions, watermarks, retry hints.

    Tracks the number of *queued* cells (enqueued, not yet picked up by a
    flush) against ``queue_cap``, plus a peak-depth gauge the overload
    soak asserts against ("memory bounded: the intake queue never exceeds
    its configured cap").  The ``retry_after_ms`` hint is an EWMA of
    recent flush wall times scaled by the backlog measured in flushes --
    honest enough that a client sleeping the hint usually finds room, and
    cheap enough to compute on every shed.

    The read gate is the backpressure half: above ``high_watermark`` the
    server stops reading from connections (``should_pause``), below
    ``low_watermark`` it resumes.  Hysteresis (high > low) keeps the gate
    from flapping once per request at the boundary.
    """

    def __init__(self, queue_cap: int, batch_max: int,
                 high_watermark: Optional[int] = None,
                 low_watermark: Optional[int] = None,
                 linger_ms: float = 2.0) -> None:
        if queue_cap < 1:
            raise ValueError(f"queue_cap must be >= 1, got {queue_cap}")
        self.queue_cap = int(queue_cap)
        self.batch_max = max(1, int(batch_max))
        self.high_watermark = (int(high_watermark) if high_watermark is not None
                               else max(1, self.queue_cap // 2))
        self.low_watermark = (int(low_watermark) if low_watermark is not None
                              else max(0, self.high_watermark // 2))
        if not 0 <= self.low_watermark < self.high_watermark <= self.queue_cap:
            raise ValueError(
                f"watermarks must satisfy 0 <= low < high <= cap, got "
                f"low={self.low_watermark} high={self.high_watermark} "
                f"cap={self.queue_cap}")
        self.depth = 0
        self.peak_depth = 0
        #: EWMA of flush wall seconds; seeded from the linger window so the
        #: first hints are sane before any flush has completed.
        self._flush_ewma_s = max(linger_ms, 1.0) / 1000.0

    # -- queue accounting --------------------------------------------------

    def would_shed(self) -> bool:
        return self.depth >= self.queue_cap

    def admitted(self) -> None:
        self.depth += 1
        if self.depth > self.peak_depth:
            self.peak_depth = self.depth

    def dequeued(self, n: int = 1) -> None:
        self.depth = max(0, self.depth - n)

    def observe_flush(self, wall_s: float) -> None:
        """Fold one flush's wall time into the EWMA (alpha = 0.3)."""
        if wall_s > 0:
            self._flush_ewma_s += 0.3 * (wall_s - self._flush_ewma_s)

    def retry_after_ms(self) -> float:
        """Backlog-scaled hint: (queued flushes ahead + 1) * flush EWMA."""
        flushes_ahead = self.depth / self.batch_max + 1.0
        hint = flushes_ahead * self._flush_ewma_s * 1000.0
        return min(max(hint, 1.0), 30_000.0)

    # -- read gate ---------------------------------------------------------

    def should_pause(self, reading_paused: bool) -> bool:
        """Next state of the read gate given the current one (hysteresis)."""
        if reading_paused:
            return self.depth > self.low_watermark
        return self.depth >= self.high_watermark

    def stats(self) -> dict:
        return {
            "depth": self.depth,
            "peak_depth": self.peak_depth,
            "queue_cap": self.queue_cap,
            "high_watermark": self.high_watermark,
            "low_watermark": self.low_watermark,
            "flush_ewma_ms": self._flush_ewma_s * 1000.0,
            "retry_after_ms": self.retry_after_ms(),
        }


# ---------------------------------------------------------------------------
# circuit breaking
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BreakerConfig:
    """Knobs of one shard's circuit breaker.

    ``threshold`` consecutive bad dispatches trip it; open windows last
    ``min(cooldown_cap_s, cooldown_base_s * 2**(trips-1))`` seconds --
    capped exponential, so a persistently sick shard settles into probing
    every ``cooldown_cap_s`` instead of hammering itself.
    """

    threshold: int = 3
    cooldown_base_s: float = 1.0
    cooldown_cap_s: float = 30.0

    def cooldown(self, trips: int) -> float:
        return min(self.cooldown_cap_s,
                   self.cooldown_base_s * (2.0 ** max(0, trips - 1)))


class ShardBreaker:
    """Per-shard health and the closed -> open -> half-open state machine.

    All transitions happen in two entry points, both called on the event
    loop: :meth:`dispatch_mode` (read + the open->half-open edge) before a
    flush dispatches, and :meth:`on_outcome` (the closing/re-tripping
    edges) after its outcome lands.  A dispatch is *bad* when the shard's
    supervised map failed outright or its counters show worker kills,
    cell timeouts, or precision escalations -- the "shard is sick"
    signals, as opposed to per-request typed errors (a malformed economy
    is the client's fault) or deadline expirations (the client's budget,
    not the shard's health).
    """

    #: States (``state`` attribute): healthy, tripped, probing.
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, sid: int, config: Optional[BreakerConfig] = None) -> None:
        self.sid = sid
        self.config = config if config is not None else BreakerConfig()
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.trips = 0
        self.open_until = 0.0
        self.probes = 0
        self.last_failure: Optional[str] = None

    # -- reading -----------------------------------------------------------

    def degraded_mode(self) -> str:
        """The ladder rung for the current trip count (>= 1 trips)."""
        return _LADDER[min(self.trips, len(_LADDER)) - 1]

    def dispatch_mode(self, now: float) -> tuple[str, bool]:
        """``(mode, is_probe)`` for a dispatch starting at ``now``.

        While open and cooling down, returns the degraded rung.  Once the
        cooldown has elapsed, exactly one dispatch becomes the half-open
        probe (normal mode); concurrent dispatches while the probe is in
        flight stay degraded, so a bad shard never sees two probes at
        once.
        """
        if self.state == self.CLOSED:
            return MODE_NORMAL, False
        if self.state == self.OPEN and now >= self.open_until:
            self.state = self.HALF_OPEN
            self.probes += 1
            return MODE_NORMAL, True
        return self.degraded_mode(), False

    def retry_after_ms(self, now: float) -> float:
        """Remaining cooldown (for cache-only fast-fail envelopes)."""
        return max(0.0, (self.open_until - now) * 1000.0)

    # -- transitions -------------------------------------------------------

    def _trip(self, now: float) -> None:
        self.trips += 1
        self.state = self.OPEN
        self.open_until = now + self.config.cooldown(self.trips)
        self.consecutive_failures = 0

    def on_outcome(self, ok: bool, now: float, probe: bool = False,
                   detail: Optional[str] = None) -> bool:
        """Feed one dispatch outcome; returns True when a trip occurred.

        Degraded (non-probe) dispatch outcomes are ignored for state: a
        serial or exact dispatch succeeding proves nothing about the
        worker pool's health, and failing in brownout must not deepen the
        hole before the probe gets its chance.
        """
        if not ok:
            self.last_failure = detail
        if probe:
            # The half-open probe decides: close fully or re-trip deeper.
            if ok:
                self.state = self.CLOSED
                self.trips = 0
                self.consecutive_failures = 0
                return False
            self._trip(now)
            return True
        if self.state != self.CLOSED:
            return False
        if ok:
            self.consecutive_failures = 0
            return False
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.config.threshold:
            self._trip(now)
            return True
        return False

    @staticmethod
    def outcome_is_bad(error: Optional[BaseException], snapshot: dict) -> bool:
        """Classify one shard dispatch from its error + counters delta."""
        return (error is not None
                or snapshot.get("worker_respawns", 0) > 0
                or snapshot.get("cell_timeouts", 0) > 0
                or snapshot.get("precision_escalations", 0) > 0)

    def stats(self, now: float) -> dict:
        return {
            "state": self.state,
            "mode": (MODE_NORMAL if self.state == self.CLOSED
                     else self.degraded_mode()),
            "trips": self.trips,
            "consecutive_failures": self.consecutive_failures,
            "probes": self.probes,
            "cooldown_remaining_s": max(0.0, self.open_until - now),
            "last_failure": self.last_failure,
        }
