"""Shared response cache keyed by the canonical instance fingerprint.

The decomposition cache (:mod:`repro.engine.cache`) lives per process and
keys by the *labelled* instance; this cache lives in the server front-end,
keys by :func:`repro.graphs.canonical_form`'s rotation/reflection-canonical
fingerprint, and stores the fully-encoded solve result in canonical
coordinates -- so a relabelled copy of an economy the server has already
priced is a front-end hit that never touches the worker pool.

``maxsize <= 0`` disables the cache entirely, mirroring
:class:`~repro.engine.cache.DecompositionCache` (and the PR-6 template
cache): the ``cache_size=0`` knob means *every* caching layer is off, so
counter totals are a pure function of the request stream -- independent of
sharding, arrival order, and batch boundaries.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

__all__ = ["ResponseCache"]


class ResponseCache:
    """Bounded LRU of canonical-coordinate solve results.

    Values are the plain JSON-ready dicts produced by
    :func:`repro.serve.solver.solve_cell`; they are treated as immutable
    (the mapping step always builds fresh lists), so one entry can back
    any number of concurrently-served responses.
    """

    __slots__ = ("maxsize", "_entries")

    def __init__(self, maxsize: int = 1024) -> None:
        self.maxsize = int(maxsize)
        self._entries: OrderedDict[bytes, dict] = OrderedDict()

    @property
    def enabled(self) -> bool:
        return self.maxsize > 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: bytes) -> Optional[dict]:
        if not self.enabled:
            return None
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: bytes, value: dict) -> None:
        if not self.enabled:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def entries(self) -> list[tuple[bytes, dict]]:
        """Every ``(key, value)`` pair, least-recently-used first.

        The snapshot layer (:mod:`repro.serve.durability`) serializes this
        list; restoring in the same order replays the LRU recency, so a
        warm restart evicts the same entries a continuous run would have.
        """
        return list(self._entries.items())

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> dict:
        return {"size": len(self._entries), "maxsize": self.maxsize}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResponseCache(size={len(self)}/{self.maxsize})"
