"""Supervised auto-restart: the watchdog parent for a durable daemon.

:class:`Supervisor` owns one child server process (the ``repro-serve
serve`` CLI, or any argv speaking the wire protocol) and keeps it alive:

* **liveness by ping, not by PID.**  Every ``heartbeat_s`` the watchdog
  opens a connection and sends a protocol ``ping``; ``heartbeat_misses``
  consecutive failures mean the child is *wedged* -- alive as a process
  but dead as a server -- and it is SIGKILLed and restarted.  A child
  that exits on its own is restarted directly.  Either way the
  replacement is pointed at the same durability directory, so it
  restores the cache snapshot and replays the unsettled journal tail
  (:mod:`repro.serve.durability`) instead of starting cold.
* **capped-exponential restart backoff.**  Consecutive unhealthy
  incarnations (died or wedged before ``healthy_after_s`` of uptime)
  back off ``backoff_base_s * 2^k`` capped at ``backoff_cap_s``; an
  incarnation that stays healthy resets the crash-loop counter, so a
  one-off crash a week never accumulates toward the give-up limit.
* **typed give-up.**  More than ``max_crash_loops`` consecutive
  unhealthy incarnations raise
  :class:`~repro.exceptions.CrashLoopError` (carrying the restart count
  and last exit status) -- a supervisor that cannot keep its child up is
  a louder failure than the crash itself, and must never busy-loop
  forever masking it.

The restart generation is handed to each child via the
``REPRO_SERVE_RESTARTS`` environment variable, which the server surfaces
as the ``restarts`` gauge in ``stats()`` -- so one ``stats`` call against
the serving port tells an operator how turbulent the lineage has been.
"""

from __future__ import annotations

import json
import math
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from typing import Optional

from ..exceptions import CrashLoopError, MalformedInputError

__all__ = ["SuperviseConfig", "Supervisor", "serve_child_argv"]

#: Environment variable carrying the restart generation to the child.
RESTARTS_ENV = "REPRO_SERVE_RESTARTS"


@dataclass(frozen=True)
class SuperviseConfig:
    """Watchdog knobs, guard-validated like every serving config."""

    #: Seconds between liveness pings once the child is up.
    heartbeat_s: float = 1.0
    #: Consecutive failed pings before the child is declared wedged.
    heartbeat_misses: int = 3
    #: Per-ping connect/response budget.
    ping_timeout_s: float = 2.0
    #: Capped-exponential restart backoff (base * 2^crash_loops, capped).
    backoff_base_s: float = 0.2
    backoff_cap_s: float = 5.0
    #: Consecutive unhealthy incarnations tolerated before
    #: :class:`~repro.exceptions.CrashLoopError`.
    max_crash_loops: int = 5
    #: Uptime after which an incarnation counts as healthy (resets the
    #: crash-loop counter).
    healthy_after_s: float = 5.0
    #: How long a fresh child may take to answer its first ping.
    startup_grace_s: float = 10.0

    def validated(self) -> "SuperviseConfig":
        for name in ("heartbeat_s", "ping_timeout_s", "backoff_base_s",
                     "backoff_cap_s", "healthy_after_s", "startup_grace_s"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, (int, float)) \
                    or not math.isfinite(value) or value <= 0:
                raise MalformedInputError(
                    f"supervise {name} must be a positive finite number, "
                    f"got {value!r}")
        for name in ("heartbeat_misses", "max_crash_loops"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, int) \
                    or value < 1:
                raise MalformedInputError(
                    f"supervise {name} must be a positive integer, "
                    f"got {value!r}")
        if self.backoff_cap_s < self.backoff_base_s:
            raise MalformedInputError(
                f"supervise backoff_cap_s ({self.backoff_cap_s!r}) must be "
                f">= backoff_base_s ({self.backoff_base_s!r})")
        return self


def serve_child_argv(host: str, port: int,
                     extra: Optional[list[str]] = None) -> list[str]:
    """The canonical child argv: this interpreter's ``repro-serve serve``.

    ``extra`` carries any further server flags (``--durable``, shard and
    cache sizing, ...) verbatim.
    """
    argv = [sys.executable, "-m", "repro.serve.cli", "serve",
            "--host", host, "--port", str(port)]
    if extra:
        argv.extend(extra)
    return argv


def _ping(host: str, port: int, timeout: float) -> bool:
    """One protocol ping; True iff a well-formed ok envelope came back."""
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            sock.settimeout(timeout)
            sock.sendall(b'{"op":"ping","id":"supervisor"}\n')
            buf = b""
            while not buf.endswith(b"\n"):
                chunk = sock.recv(65536)
                if not chunk:
                    return False
                buf += chunk
        return json.loads(buf)["status"] == "ok"
    except (OSError, ValueError, KeyError):
        return False


class Supervisor:
    """Run ``argv`` as a supervised child serving ``host:port``.

    :meth:`run` blocks -- spawning, watching, restarting -- until
    :meth:`stop` is called (graceful child shutdown, normal return) or
    the crash-loop limit is hit (:class:`CrashLoopError`).  State is
    readable from other threads: ``restarts`` (completed restarts),
    ``crash_loops`` (current consecutive-unhealthy streak),
    ``last_exit`` (the previous incarnation's wait status), and
    ``child_pid`` (the live incarnation, for chaos harnesses to SIGKILL).
    """

    def __init__(self, argv: list[str], host: str, port: int,
                 config: Optional[SuperviseConfig] = None,
                 env: Optional[dict] = None) -> None:
        self.argv = list(argv)
        self.host = host
        self.port = int(port)
        self.config = (config if config is not None
                       else SuperviseConfig()).validated()
        self.env = env
        self.restarts = 0
        self.crash_loops = 0
        self.last_exit: Optional[int] = None
        self.child_pid: Optional[int] = None
        self._child: Optional[subprocess.Popen] = None
        self._stop = threading.Event()
        self._started = threading.Event()  # first incarnation answered ping

    # -- public API -------------------------------------------------------

    def wait_ready(self, timeout: float = 30.0) -> bool:
        """Block until the first incarnation answers a ping (harness use)."""
        return self._started.wait(timeout)

    def stop(self) -> None:
        """Request a graceful stop; :meth:`run` unwinds and returns."""
        self._stop.set()

    def kill_child(self) -> Optional[int]:
        """SIGKILL the live incarnation (the chaos harness's crash lever).

        Returns the PID killed, or ``None`` if no child was running.  The
        watchdog observes the death on its next beat and restarts.
        """
        child = self._child
        if child is None or child.poll() is not None:
            return None
        if not self._kill_group(child, signal.SIGKILL):
            return None
        return child.pid

    @staticmethod
    def _kill_group(child: subprocess.Popen, signum: int) -> bool:
        """Signal the child's whole process group (it is a session leader).

        The daemon forks shard workers; a signal delivered to the daemon
        alone leaves them orphaned -- and an orphaned fork holds the
        inherited listening socket, keeping the port bound against the
        restarted incarnation.  Workers also carry ``PR_SET_PDEATHSIG``
        on Linux, but the group signal is the portable, race-free path.
        """
        try:
            os.killpg(child.pid, signum)
            return True
        except ProcessLookupError:
            return False
        except OSError:
            # Group signal unavailable (already reaped, or a platform
            # without process groups): fall back to the child alone.
            try:
                child.send_signal(signum)
                return True
            except OSError:
                return False

    def run(self) -> None:
        cfg = self.config
        try:
            while not self._stop.is_set():
                spawn_time = time.monotonic()
                self._spawn()
                healthy_uptime = self._watch_incarnation(spawn_time)
                if self._stop.is_set():
                    return
                # The incarnation is down (exited or killed for a hang);
                # decide whether this lineage is a crash loop.
                if healthy_uptime:
                    self.crash_loops = 0
                self.crash_loops += 1
                if self.crash_loops > cfg.max_crash_loops:
                    raise CrashLoopError(
                        f"repro-serve child crashed {self.crash_loops} "
                        f"consecutive times within {cfg.healthy_after_s:.1f}s "
                        f"of each start (last exit status {self.last_exit}); "
                        f"giving up",
                        restarts=self.restarts, last_exit=self.last_exit)
                backoff = min(
                    cfg.backoff_base_s * (2 ** (self.crash_loops - 1)),
                    cfg.backoff_cap_s)
                if self._stop.wait(backoff):
                    return
                self.restarts += 1
        finally:
            self._terminate_child()

    # -- internals --------------------------------------------------------

    def _spawn(self) -> None:
        env = dict(os.environ if self.env is None else self.env)
        env[RESTARTS_ENV] = str(self.restarts)
        self._child = subprocess.Popen(
            self.argv, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            # Own process group: a Ctrl-C aimed at the supervisor must not
            # race the child into its own graceful-drain path -- restarts
            # and shutdowns stay the watchdog's decisions alone.
            start_new_session=True,
        )
        self.child_pid = self._child.pid

    def _watch_incarnation(self, spawn_time: float) -> bool:
        """Watch one child until it dies, wedges, or stop is requested.

        Returns True iff the incarnation reached ``healthy_after_s`` of
        ping-confirmed uptime (i.e. its eventual death is a fresh
        incident, not part of a crash loop).
        """
        cfg = self.config
        child = self._child
        assert child is not None

        # Startup: wait for the first successful ping within the grace
        # window.  A child that exits or never answers is unhealthy.
        deadline = spawn_time + cfg.startup_grace_s
        ready = False
        while not self._stop.is_set() and time.monotonic() < deadline:
            if child.poll() is not None:
                self.last_exit = child.returncode
                return False
            if _ping(self.host, self.port, cfg.ping_timeout_s):
                ready = True
                self._started.set()
                break
            if self._stop.wait(0.05):
                return False
        if self._stop.is_set():
            return False
        if not ready:
            self._kill_for_hang("never answered its startup ping")
            return False

        misses = 0
        healthy = False
        while not self._stop.is_set():
            if self._stop.wait(cfg.heartbeat_s):
                return healthy
            if child.poll() is not None:
                self.last_exit = child.returncode
                return healthy
            if _ping(self.host, self.port, cfg.ping_timeout_s):
                misses = 0
                if time.monotonic() - spawn_time >= cfg.healthy_after_s:
                    healthy = True
            else:
                misses += 1
                if misses >= cfg.heartbeat_misses:
                    self._kill_for_hang(
                        f"missed {misses} consecutive heartbeats")
                    return healthy
        return healthy

    def _kill_for_hang(self, reason: str) -> None:
        child = self._child
        if child is None:
            return
        print(f"repro-serve supervisor: child {child.pid} {reason}; "
              f"killing for restart", file=sys.stderr, flush=True)
        self._kill_group(child, signal.SIGKILL)
        child.wait()
        self.last_exit = child.returncode

    def _terminate_child(self) -> None:
        """Graceful child stop on supervisor exit: TERM, wait, then KILL."""
        child = self._child
        self._child = None
        self.child_pid = None
        if child is None or child.poll() is not None:
            return
        try:
            child.send_signal(signal.SIGTERM)
        except OSError:
            return
        try:
            child.wait(timeout=15.0)
        except subprocess.TimeoutExpired:
            self._kill_group(child, signal.SIGKILL)
            child.wait()
