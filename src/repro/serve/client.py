"""First-class clients for the ``repro-serve`` wire protocol.

Two layers, matching the two kinds of callers:

* :class:`Client` -- one blocking JSONL connection, no policy.  ``rpc``
  sends a dict and returns the response dict verbatim, typed error
  envelopes included.  This is what the protocol-level tests use: every
  envelope the server emits is observable.
* :class:`ResilientClient` -- the production-shaped wrapper the overload
  work makes possible.  Solve requests are **idempotent by construction**
  (the server keys on the canonical ring fingerprint, so a retried request
  coalesces with or cache-hits its previous self), which means the client
  may retry *any* failed attempt safely: ``overloaded`` and
  ``circuit-open`` envelopes (honoring the server's ``retry_after_ms``
  hint), and dropped/reset connections (transparent reconnect).  Retries
  back off capped-exponentially with full jitter from a **seeded** RNG --
  the chaos soak replays bit-identically -- and the whole retry loop runs
  under one optional client-side ``deadline_ms`` budget: each attempt
  sends the *remaining* budget as its per-request deadline, and when the
  budget cannot cover another attempt the client raises
  :class:`~repro.exceptions.DeadlineExceededError` instead of sleeping
  past it.

Terminal outcomes of :meth:`ResilientClient.solve` are exactly one of:
the result dict, :class:`~repro.exceptions.OverloadedError` /
:class:`~repro.exceptions.CircuitOpenError` (retries exhausted),
:class:`~repro.exceptions.DeadlineExceededError` (budget gone, or the
server said so), or :class:`~repro.exceptions.ServeRequestError` (a
non-retryable typed envelope -- the request itself is at fault).
"""

from __future__ import annotations

import json
import random
import socket
import time
from contextlib import contextmanager
from typing import Any, Optional

from ..exceptions import (
    CircuitOpenError,
    DeadlineExceededError,
    OverloadedError,
    ServeRequestError,
)

__all__ = ["Client", "ResilientClient", "client_for", "serving"]

#: Envelope ``error.type`` names the resilient client treats as retryable
#: shed signals (the server did no work; the hint says when to return).
_RETRYABLE_TYPES = frozenset({"OverloadedError", "CircuitOpenError"})

#: Envelope ``error.type`` names that mean *this endpoint* is dying (a
#: graceful stop that cannot finish) rather than this request being at
#: fault: rotate to the next endpoint and retry there.
_FAILOVER_TYPES = frozenset({"ShutdownTimeoutError"})


class Client:
    """One blocking JSONL connection; ``rpc`` sends a dict, returns a dict."""

    def __init__(self, port: int, host: str = "127.0.0.1",
                 timeout: float = 60.0) -> None:
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.file = self.sock.makefile("rb")

    def send_raw(self, payload: bytes) -> dict:
        self.sock.sendall(payload)
        line = self.file.readline()
        if not line:
            raise ConnectionResetError("server dropped the connection")
        return json.loads(line)

    def rpc(self, obj: dict) -> dict:
        return self.send_raw(json.dumps(obj).encode("utf-8") + b"\n")

    def close(self) -> None:
        try:
            self.file.close()
            self.sock.close()
        except OSError:
            pass


class ResilientClient:
    """Deadline-aware, retry-safe wrapper over one reconnecting connection.

    Not thread-safe (one socket, one in-flight request); share nothing or
    give each thread its own instance.  ``seed`` fixes the jitter RNG --
    the soak harness runs deterministic schedules through it.

    **Failover.**  ``endpoints`` is an ordered list of ``(host, port)``
    pairs (or bare ports on the default ``host``); omitted, the single
    ``port``/``host`` pair is the whole list.  Transport failures --
    dropped connections, connection-refused, and a typed
    ``ShutdownTimeoutError`` envelope (the endpoint is dying, not the
    request) -- rotate to the next endpoint, all under the same one
    ``deadline_ms`` budget and the same attempt counter; canonical-
    fingerprint idempotency is what makes replaying the request at a
    different endpoint safe.  Connection-refused additionally retries
    with a short capped backoff per endpoint cycle, so a client racing a
    (re)starting server -- the supervisor window, a soak harness binding
    its port -- connects as soon as the listener is up instead of
    burning a whole attempt.
    """

    def __init__(self, port: Optional[int] = None, host: str = "127.0.0.1", *,
                 endpoints: Optional[list] = None,
                 max_attempts: int = 6,
                 backoff_base_ms: float = 50.0,
                 backoff_cap_ms: float = 5000.0,
                 socket_timeout: float = 60.0,
                 connect_cycles: int = 4,
                 connect_backoff_ms: float = 25.0,
                 seed: Optional[int] = None) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if endpoints:
            resolved = []
            for ep in endpoints:
                if isinstance(ep, int):
                    resolved.append((host, ep))
                else:
                    ep_host, ep_port = ep
                    resolved.append((str(ep_host), int(ep_port)))
            self.endpoints = resolved
        else:
            if port is None:
                raise ValueError("either port or endpoints is required")
            self.endpoints = [(host, int(port))]
        self._endpoint_idx = 0
        self.max_attempts = int(max_attempts)
        self.backoff_base_ms = float(backoff_base_ms)
        self.backoff_cap_ms = float(backoff_cap_ms)
        self.socket_timeout = float(socket_timeout)
        self.connect_cycles = max(int(connect_cycles), 1)
        self.connect_backoff_ms = float(connect_backoff_ms)
        self._rng = random.Random(seed)
        self._client: Optional[Client] = None
        #: Observability for tests and the soak harness.
        self.retries = 0
        self.reconnects = 0
        self.sheds_seen = 0
        self.failovers = 0

    @property
    def host(self) -> str:
        """The current endpoint's host (rotates on failover)."""
        return self.endpoints[self._endpoint_idx][0]

    @property
    def port(self) -> int:
        """The current endpoint's port (rotates on failover)."""
        return self.endpoints[self._endpoint_idx][1]

    # -- connection management --------------------------------------------

    def _conn(self) -> Client:
        """The live connection, dialing (with failover) if there is none.

        Tries every endpoint once per cycle, rotating on refusal; a fully
        refused cycle sleeps a short capped-exponential jittered delay --
        the startup-race window is tens of milliseconds, so the retry
        budget here is deliberately small and bounded (worst case well
        under a second) rather than another full backoff ladder.
        """
        if self._client is not None:
            return self._client
        last_exc: Optional[Exception] = None
        for cycle in range(self.connect_cycles):
            if cycle:
                cap = min(self.connect_backoff_ms * (2.0 ** (cycle - 1)),
                          400.0)
                time.sleep(self._rng.uniform(0.0, cap) / 1000.0)
            for _ in range(len(self.endpoints)):
                host, port = self.endpoints[self._endpoint_idx]
                try:
                    self._client = Client(port, host,
                                          timeout=self.socket_timeout)
                    return self._client
                except OSError as exc:
                    last_exc = exc
                    self._rotate()
        assert last_exc is not None
        raise last_exc

    def _rotate(self) -> None:
        """Advance to the next endpoint (no-op with a single endpoint)."""
        if len(self.endpoints) > 1:
            self._drop_conn()
            self._endpoint_idx = (self._endpoint_idx + 1) % len(self.endpoints)
            self.failovers += 1

    def _drop_conn(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None

    def close(self) -> None:
        self._drop_conn()

    def __enter__(self) -> "ResilientClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- plain ops (no retry policy; used by harnesses and tests) ---------

    def rpc(self, obj: dict) -> dict:
        """One attempt, reconnecting once if the cached connection died."""
        try:
            return self._conn().rpc(obj)
        except (ConnectionError, OSError):
            self._drop_conn()
            self.reconnects += 1
            return self._conn().rpc(obj)

    def ping(self) -> dict:
        return self.rpc({"op": "ping"})

    def stats(self) -> dict:
        resp = self.rpc({"op": "stats"})
        return resp.get("result", resp)

    # -- the resilient solve ----------------------------------------------

    def solve(self, graph_dict: dict, *, deadline_ms: Optional[float] = None,
              req_id: Any = None) -> dict:
        """Solve to completion under the retry policy; returns the result.

        ``deadline_ms`` is the *overall* client budget across every
        attempt and backoff sleep; each attempt carries the remaining
        budget on the wire so the server stops working the moment the
        client stops caring.
        """
        deadline_at = (time.monotonic() + deadline_ms / 1000.0
                       if deadline_ms is not None else None)
        last_exc: Optional[Exception] = None
        for attempt in range(self.max_attempts):
            req: dict = {"op": "solve", "graph": graph_dict}
            if req_id is not None:
                req["id"] = req_id
            if deadline_at is not None:
                remaining_ms = (deadline_at - time.monotonic()) * 1000.0
                if remaining_ms <= 0:
                    raise DeadlineExceededError(
                        "client deadline_ms budget exhausted before "
                        f"attempt {attempt + 1}")
                req["deadline_ms"] = remaining_ms
            try:
                resp = self._conn().rpc(req)
            except (ConnectionError, OSError) as exc:
                # Transport drop: idempotency makes the blind retry safe --
                # if the lost attempt actually solved, the retry cache-hits
                # (here or, after the rotation below, at the next
                # endpoint).
                self._drop_conn()
                self.reconnects += 1
                self._rotate()
                last_exc = exc
                self._sleep_backoff(attempt, None, deadline_at)
                self.retries += 1
                continue
            if resp.get("status") == "ok":
                return resp["result"]
            error = resp.get("error", {})
            type_name = error.get("type", "UnknownError")
            message = error.get("message", "")
            if type_name == "DeadlineExceededError":
                raise DeadlineExceededError(message)
            if type_name in _FAILOVER_TYPES:
                # The endpoint is going away; the request is fine.  Move.
                self._drop_conn()
                self._rotate()
                last_exc = ServeRequestError(type_name, message)
                self._sleep_backoff(attempt, None, deadline_at)
                self.retries += 1
                continue
            if type_name not in _RETRYABLE_TYPES:
                raise ServeRequestError(type_name, message)
            # A shed: typed, no work done, hint attached.
            self.sheds_seen += 1
            hint = error.get("retry_after_ms")
            cls = (OverloadedError if type_name == "OverloadedError"
                   else CircuitOpenError)
            last_exc = cls(message, retry_after_ms=float(hint or 0.0))
            self._sleep_backoff(attempt, hint, deadline_at)
            self.retries += 1
        assert last_exc is not None
        raise last_exc

    def _sleep_backoff(self, attempt: int, hint_ms: Optional[float],
                       deadline_at: Optional[float]) -> None:
        """Sleep before the next attempt, or raise if the budget can't pay.

        Capped exponential with full jitter; a server-provided
        ``retry_after_ms`` hint becomes the floor of the window (the server
        knows its backlog better than our exponent does).
        """
        cap = min(self.backoff_cap_ms,
                  self.backoff_base_ms * (2.0 ** attempt))
        delay_ms = self._rng.uniform(0.0, cap)
        if hint_ms is not None:
            delay_ms = max(delay_ms, float(hint_ms))
        if deadline_at is not None:
            remaining_ms = (deadline_at - time.monotonic()) * 1000.0
            if delay_ms >= remaining_ms:
                raise DeadlineExceededError(
                    "client deadline_ms budget cannot cover the "
                    f"{delay_ms:.0f} ms backoff before the next attempt")
        time.sleep(delay_ms / 1000.0)


@contextmanager
def serving(**kwargs):
    """A running server; yields the :class:`repro.serve.ServeHandle`."""
    from .server import ServeConfig, start_in_thread

    handle = start_in_thread(ServeConfig(**kwargs))
    try:
        yield handle
    finally:
        handle.stop()


@contextmanager
def client_for(handle):
    c = Client(handle.port)
    try:
        yield c
    finally:
        c.close()
