"""Per-request solve semantics: canonicalize, decompose, allocate, map back.

The serving layer defines one solve semantics and uses it everywhere --
worker cells, the in-process fallback, the differential audit leg, and the
test suite's reference implementation are all this module:

1. the requested instance is normalized to its **canonical representative**
   (:func:`repro.graphs.canonical_form`): for rings, the
   lexicographically-minimal rotation/reflection of the bit-exact weight
   bytes; the witnessing permutation is remembered;
2. the canonical representative is decomposed and allocated through
   :func:`repro.core.bottleneck_decomposition` +
   :func:`repro.core.bd_allocation` (the same entry points every
   experiment uses);
3. utilities/alphas/pairs are mapped back through the permutation into the
   requester's vertex ids.

Normalizing *before* solving (rather than caching opportunistically) is
load-bearing: float summation is not bit-exactly equivariant under
relabelling (``(a+b)+c`` vs ``(b+c)+a``), so per-labelling solves of
isomorphic instances could differ in the last ulp.  Canonical-form solving
makes the service **label-invariant by construction** -- isomorphic
requests receive bit-identically mapped responses, a relabelled agent can
never gain an ulp, and a cached entry serves every labelling of its
economy without a soundness gap.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core import bd_allocation, bottleneck_decomposition
from ..engine import EngineContext, EngineSpec
from ..exceptions import ReproError, is_escalatable, is_retryable
from ..graphs import WeightedGraph, canonical_form
from ..graphs.builders import ring
from ..io import graph_from_dict, scalar_to_json
from ..numeric import EXACT

__all__ = [
    "canonical_graph",
    "canonical_request",
    "deadline_marker",
    "map_result",
    "single_shot_response",
    "solve_cell",
    "solve_cell_exact",
]


def deadline_marker(item: tuple[EngineSpec, dict]) -> dict:
    """``supervised_map``'s ``on_deadline`` hook for serve cells.

    A cell whose deadline budget runs out inside the map settles as this
    marker -- the same ``{"error": ...}`` shape :func:`solve_cell` uses for
    typed per-instance failures -- so one expired request costs one typed
    ``deadline_exceeded`` envelope, never its batch.  The server's
    ``_respond`` recognizes the type name and counts it under
    ``serve_deadline_exceeded`` rather than ``serve_errors``.
    """
    return {"error": {
        "type": "DeadlineExceededError",
        "message": "deadline_ms budget exhausted before the solve completed",
    }}


def canonical_graph(g: WeightedGraph, order: Sequence[int]) -> WeightedGraph:
    """The canonical representative ``order`` witnesses (default labels)."""
    weights = [g.weights[v] for v in order]
    if g.is_ring():
        return ring(weights)
    return WeightedGraph(g.n, g.edges, g.weights, validate=False)


def canonical_request(graph_dict: dict) -> tuple[bytes, tuple[int, ...], dict]:
    """Decode + canonicalize one solve payload.

    Returns ``(key, order, canonical_graph_dict)``.  The graph payload goes
    through the full guard pass here (:func:`repro.io.graph_from_dict`), so
    everything past this point -- queues, workers, cache -- only ever sees
    well-formed instances.  The canonical dict re-encodes weights with the
    exact hex/frac discipline, so the worker's rebuild is bit-identical.
    """
    g = graph_from_dict(graph_dict)
    key, order = canonical_form(g)
    cg = canonical_graph(g, order)
    canon_dict = {
        "n": cg.n,
        "edges": [list(e) for e in cg.edges],
        "weights": [scalar_to_json(w) for w in cg.weights],
    }
    return key, order, canon_dict


def _encode_result(g: WeightedGraph, decomp, alloc) -> dict:
    """Solve output -> plain JSON-ready dict, canonical coordinates."""
    return {
        "n": g.n,
        "utilities": [scalar_to_json(u) for u in alloc.utilities],
        "alphas": [scalar_to_json(decomp.alpha_of(v)) for v in range(g.n)],
        "pairs": [
            {
                "index": p.index,
                "B": sorted(p.B),
                "C": sorted(p.C),
                "alpha": scalar_to_json(p.alpha),
            }
            for p in decomp.pairs
        ],
    }


def map_result(result: dict, order: Sequence[int]) -> dict:
    """Canonical-coordinate result -> the requester's vertex ids.

    ``order[k]`` is the requester's id at canonical position ``k``.  Fresh
    lists are always built (cached results are shared across responses and
    must stay immutable); error markers pass through untouched.
    """
    if "error" in result:
        return dict(result)
    n = result["n"]
    utilities: list = [None] * n
    alphas: list = [None] * n
    for k, orig in enumerate(order):
        utilities[orig] = result["utilities"][k]
        alphas[orig] = result["alphas"][k]
    pairs = [
        {
            "index": p["index"],
            "B": sorted(order[b] for b in p["B"]),
            "C": sorted(order[c] for c in p["C"]),
            "alpha": p["alpha"],
        }
        for p in result["pairs"]
    ]
    return {"n": n, "utilities": utilities, "alphas": alphas, "pairs": pairs}


def _solve_canonical(canon_dict: dict, ctx: EngineContext, backend=None) -> dict:
    g = graph_from_dict(canon_dict)
    with ctx.span("serve/solve"):
        decomp = bottleneck_decomposition(g, backend, ctx)
        alloc = bd_allocation(g, decomp, backend, ctx)
    return _encode_result(g, decomp, alloc)


def solve_cell(item: tuple[EngineSpec, dict]) -> dict:
    """One worker cell: ``(spec, canonical_graph_dict)`` -> result dict.

    Runs on the supervised pool (or in-process for ``shards=0``); the
    worker memoizes one rebuilt context per spec and registers it with the
    metrics drain, so batched solves hit a per-shard decomposition cache
    and their counters flow back to the server context.

    Error discipline: retryable/escalatable failures (injected faults,
    numeric instability, non-convergence) propagate so the supervisor's
    retry -> exact-escalation ladder applies per request; everything else
    in the typed taxonomy comes back as an ``{"error": ...}`` marker --
    one bad instance costs one error response, never the batch.
    """
    # Lazy import sidesteps the analysis -> runtime -> obs import chain at
    # package-import time; the memoized per-process context (and its drain
    # registration) is exactly what the sweep workers already use.
    from ..analysis.parallel import _context_for

    spec, canon_dict = item
    ctx = _context_for(spec)
    try:
        return _solve_canonical(canon_dict, ctx, spec.backend)
    except ReproError as exc:
        if is_retryable(exc) or is_escalatable(exc):
            raise
        return {"error": {"type": type(exc).__name__, "message": str(exc)}}


def solve_cell_exact(item: tuple[EngineSpec, dict]) -> dict:
    """Escalation twin of :func:`solve_cell`: the exact ``Fraction`` backend.

    Wired as ``supervised_map``'s ``escalate_fn``, so a request whose float
    solve keeps failing with a typed numeric error is answered exactly
    (``frac`` encodings in the response) instead of failing the client.
    Also dispatched directly when a shard breaker brownouts to ``exact``
    mode, which is why it carries the same non-retryable -> error-marker
    discipline as :func:`solve_cell` (as escalate_fn the distinction is
    moot: escalation is already the ladder's last rung).
    """
    spec, canon_dict = item
    from ..analysis.parallel import _context_for

    ctx = _context_for(spec)
    try:
        return _solve_canonical(canon_dict, ctx, EXACT)
    except ReproError as exc:
        if is_retryable(exc) or is_escalatable(exc):
            raise
        return {"error": {"type": type(exc).__name__, "message": str(exc)}}


def single_shot_response(
    g: WeightedGraph,
    ctx: Optional[EngineContext] = None,
    backend=None,
) -> dict:
    """Reference response: one fresh, unbatched, uncached solve of ``g``.

    This is the serving semantics stripped of every serving mechanism --
    the differential audit leg and the soak harness compare every sampled
    served response against it bit-for-bit.  ``ctx`` defaults to a fresh
    context with the cache disabled, so nothing can be reused.
    """
    if ctx is None:
        ctx = EngineContext(cache_size=0)
    key, order = canonical_form(g)
    cg = canonical_graph(g, order)
    decomp = bottleneck_decomposition(cg, backend, ctx)
    alloc = bd_allocation(cg, decomp, backend, ctx)
    return map_result(_encode_result(cg, decomp, alloc), order)
