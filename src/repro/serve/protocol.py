"""The ``repro-serve`` wire protocol: newline-delimited JSON envelopes.

One request per line, one response per line, UTF-8, over a local TCP
socket.  The framing is deliberately primitive -- every language can speak
it, a soak harness can replay a transcript byte-for-byte, and a torn line
is detectable (no closing newline) rather than silently half-parsed.

Requests::

    {"op": "solve", "id": 7, "graph": {...graph_to_dict payload...},
     "deadline_ms": 500.0}                      # optional per-request budget
    {"op": "ping" | "stats" | "drain" | "shutdown", "id": ...}

Responses::

    {"id": 7, "status": "ok", "result": {...}}
    {"id": 7, "status": "error", "error": {"type": "...", "message": "..."}}

The contract at this boundary mirrors :mod:`repro.guard` everywhere else:
malformed bytes, malformed JSON, unknown ops, and invalid graph payloads
each produce a *typed error response* on the same connection -- the
connection is never dropped and the server never crashes on input.  The
``error.type`` field carries the exception class name from the established
taxonomy (``MalformedInputError``, ``GraphError``, ...), so clients can
dispatch on it exactly like in-process callers dispatch on exception types.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from ..exceptions import MalformedInputError
from ..guard import validate_request_dict

__all__ = [
    "PROTOCOL_VERSION",
    "deadline_exceeded_response",
    "decode_request_line",
    "encode_response",
    "error_response",
    "ok_response",
    "overloaded_response",
]

#: Bumped on breaking wire-format changes; reported by ``ping``/``stats``.
PROTOCOL_VERSION = "repro-serve/1"


def decode_request_line(line: bytes) -> dict:
    """One wire line -> validated request envelope.

    Raises :class:`MalformedInputError` for undecodable bytes, non-JSON,
    non-object payloads, and envelope violations (unknown op, oversized
    id, solve without a graph).  The graph payload itself is *not*
    validated here -- :func:`repro.io.graph_from_dict` runs the full guard
    pass when the solve is prepared, so the deep per-scalar work happens
    once, not twice.
    """
    try:
        text = line.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise MalformedInputError(f"request line is not UTF-8: {exc}") from exc
    try:
        obj = json.loads(text)
    except json.JSONDecodeError as exc:
        raise MalformedInputError(f"request line is not valid JSON: {exc}") from exc
    return validate_request_dict(obj)


def ok_response(req_id: Optional[Any], result: dict) -> dict:
    return {"id": req_id, "status": "ok", "result": result}


def error_response(req_id: Optional[Any], exc: BaseException) -> dict:
    """Typed error envelope from any exception of the library taxonomy.

    Exceptions carrying a ``retry_after_ms`` attribute (the overload
    family: :class:`~repro.exceptions.OverloadedError`,
    :class:`~repro.exceptions.CircuitOpenError`) surface it in the
    envelope so clients can honor the hint without parsing messages.
    """
    error: dict = {"type": type(exc).__name__, "message": str(exc)}
    retry_after = getattr(exc, "retry_after_ms", None)
    if retry_after is not None:
        error["retry_after_ms"] = round(float(retry_after), 3)
    return {"id": req_id, "status": "error", "error": error}


def overloaded_response(req_id: Optional[Any], retry_after_ms: float) -> dict:
    """The admission-control shed envelope: typed, with a backoff hint.

    Shedding answers on the live connection -- the client paid nothing
    but the round trip, learned when to come back, and can retry safely
    (requests are idempotent under the canonical fingerprint).
    """
    from ..exceptions import OverloadedError

    return error_response(req_id, OverloadedError(
        "server overloaded: intake queue at capacity; retry after "
        f"{retry_after_ms:.0f} ms", retry_after_ms=retry_after_ms))


def deadline_exceeded_response(req_id: Optional[Any]) -> dict:
    """The typed envelope for a request whose ``deadline_ms`` ran out."""
    from ..exceptions import DeadlineExceededError

    return error_response(req_id, DeadlineExceededError(
        "deadline_ms budget exhausted before a result was available"))


def encode_response(resp: dict) -> bytes:
    """Response dict -> one wire line (compact separators, trailing LF)."""
    return json.dumps(resp, separators=(",", ":")).encode("utf-8") + b"\n"
