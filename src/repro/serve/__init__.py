"""Allocation-as-a-service: the long-lived ``repro-serve`` daemon.

The CLI pipeline pays startup, validation, and decomposition on every
invocation; production traffic must not.  This package is the serving
layer on top of the existing substrate:

* :mod:`repro.serve.protocol` -- newline-delimited JSON over a local TCP
  socket; guard-validated request envelopes, typed error responses
  (malformed input answers with a structured error, never a dropped
  connection);
* :mod:`repro.serve.solver` -- the per-request solve semantics: every
  instance is normalized to its canonical representative
  (:func:`repro.graphs.canonical_form`), solved via
  :func:`repro.core.bottleneck_decomposition` +
  :func:`repro.core.bd_allocation`, and mapped back through the witnessing
  permutation, so isomorphic requests receive bit-identically mapped
  responses;
* :mod:`repro.serve.cache` -- the shared response cache keyed by the
  rotation/reflection-canonical ring fingerprint, so relabelled copies of
  one economy cost one solve;
* :mod:`repro.serve.server` -- the asyncio front-end: request coalescing,
  batch dispatch onto :func:`repro.runtime.supervised_map` (timeouts,
  retries, resource envelopes, fault injection all apply per request),
  shard-by-instance across worker processes, and ``repro.obs`` spans +
  counters end-to-end;
* :mod:`repro.serve.load` -- the seeded heavy-tailed load generator and
  soak harness behind ``repro-serve soak``, recording p50/p99 latency and
  throughput in the ``repro-bench`` schema (``BENCH_serve.json``).
"""

from .cache import ResponseCache
from .protocol import (
    PROTOCOL_VERSION,
    decode_request_line,
    encode_response,
    error_response,
    ok_response,
)
from .server import AllocationServer, ServeConfig, ServeHandle, start_in_thread
from .solver import (
    canonical_request,
    map_result,
    single_shot_response,
    solve_cell,
)

__all__ = [
    "AllocationServer",
    "PROTOCOL_VERSION",
    "ResponseCache",
    "ServeConfig",
    "ServeHandle",
    "canonical_request",
    "decode_request_line",
    "encode_response",
    "error_response",
    "map_result",
    "ok_response",
    "single_shot_response",
    "solve_cell",
    "start_in_thread",
]
