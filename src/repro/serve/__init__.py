"""Allocation-as-a-service: the long-lived ``repro-serve`` daemon.

The CLI pipeline pays startup, validation, and decomposition on every
invocation; production traffic must not.  This package is the serving
layer on top of the existing substrate:

* :mod:`repro.serve.protocol` -- newline-delimited JSON over a local TCP
  socket; guard-validated request envelopes, typed error responses
  (malformed input answers with a structured error, never a dropped
  connection);
* :mod:`repro.serve.solver` -- the per-request solve semantics: every
  instance is normalized to its canonical representative
  (:func:`repro.graphs.canonical_form`), solved via
  :func:`repro.core.bottleneck_decomposition` +
  :func:`repro.core.bd_allocation`, and mapped back through the witnessing
  permutation, so isomorphic requests receive bit-identically mapped
  responses;
* :mod:`repro.serve.cache` -- the shared response cache keyed by the
  rotation/reflection-canonical ring fingerprint, so relabelled copies of
  one economy cost one solve;
* :mod:`repro.serve.server` -- the asyncio front-end: request coalescing,
  batch dispatch onto :func:`repro.runtime.supervised_map` (timeouts,
  retries, resource envelopes, fault injection all apply per request),
  shard-by-instance across worker processes, and ``repro.obs`` spans +
  counters end-to-end;
* :mod:`repro.serve.resilience` -- the overload semantics: bounded-intake
  admission control with typed load shedding, per-request deadline
  bookkeeping, and per-shard circuit breakers with a degraded-mode ladder
  (serial -> exact -> cache-only) and half-open probes;
* :mod:`repro.serve.client` -- the shipped clients: a plain blocking
  JSONL :class:`~repro.serve.client.Client` and the retry-safe
  :class:`~repro.serve.client.ResilientClient` (deadline-aware
  capped-exponential backoff with seeded jitter, ``retry_after_ms``
  honoring, transparent reconnect -- all safe because requests are
  idempotent under the canonical fingerprint);
* :mod:`repro.serve.load` -- the seeded heavy-tailed load generator and
  soak harness behind ``repro-serve soak`` (pipelined connections, so
  bursts genuinely exceed batcher capacity), the chaos-scheduled overload
  soak behind ``repro-serve overload``, recording shed rate, goodput and
  p50/p99 latency in the ``repro-bench`` schema (``BENCH_serve.json``,
  ``BENCH_overload.json``);
* :mod:`repro.serve.durability` -- crash durability: the write-ahead
  request journal (admit before dispatch, settle on outcome, replay the
  unsettled tail on restart, compact against settles) and the bit-exact
  response-cache snapshot, both fingerprint-guarded and torn-tail
  tolerant via the shared :func:`repro.runtime.read_journal` discipline;
* :mod:`repro.serve.supervise` -- the watchdog parent behind
  ``repro-serve supervise``: ping-heartbeat liveness, SIGKILL-and-restart
  of wedged children with capped-exponential backoff, and a typed
  :class:`~repro.exceptions.CrashLoopError` give-up;
* :mod:`repro.serve.crash` -- the crash soak behind ``repro-serve
  durable`` (``BENCH_durable.json``): SIGKILL the supervised daemon
  mid-traffic and assert exactly-one-typed-outcome tiling with responses
  bit-identical to a crash-free run.
"""

from .cache import ResponseCache
from .client import Client, ResilientClient
from .crash import DURABLE_BENCH_NAME, DurableConfig, run_durable
from .durability import (
    DurabilityConfig,
    RequestJournal,
    durability_fingerprint,
    load_snapshot,
    save_snapshot,
)
from .protocol import (
    PROTOCOL_VERSION,
    deadline_exceeded_response,
    decode_request_line,
    encode_response,
    error_response,
    ok_response,
    overloaded_response,
)
from .resilience import (
    AdmissionController,
    BreakerConfig,
    Deadline,
    ShardBreaker,
)
from .server import AllocationServer, ServeConfig, ServeHandle, start_in_thread
from .solver import (
    canonical_request,
    deadline_marker,
    map_result,
    single_shot_response,
    solve_cell,
)
from .supervise import SuperviseConfig, Supervisor, serve_child_argv

__all__ = [
    "AdmissionController",
    "AllocationServer",
    "BreakerConfig",
    "Client",
    "DURABLE_BENCH_NAME",
    "Deadline",
    "DurabilityConfig",
    "DurableConfig",
    "PROTOCOL_VERSION",
    "RequestJournal",
    "ResilientClient",
    "ResponseCache",
    "ServeConfig",
    "ServeHandle",
    "ShardBreaker",
    "SuperviseConfig",
    "Supervisor",
    "canonical_request",
    "durability_fingerprint",
    "deadline_exceeded_response",
    "deadline_marker",
    "decode_request_line",
    "encode_response",
    "error_response",
    "load_snapshot",
    "map_result",
    "ok_response",
    "overloaded_response",
    "run_durable",
    "save_snapshot",
    "serve_child_argv",
    "single_shot_response",
    "solve_cell",
    "start_in_thread",
]
