"""The asyncio serving front-end: accept, coalesce, batch, shard, respond.

One :class:`AllocationServer` owns a local TCP listener, a response cache,
and a single batcher task.  The life of a solve request::

    accept --> canonicalize --> cache? --> coalesce? --> queue
                                   |           |
                                  hit       in-flight      [batcher]
                                   |           |      flush on batch_max
                                   v           v        or linger expiry
                                respond <-- future <-- shard by sha256(key)
                                                         |
                                            supervised_map per shard
                                        (timeouts/retries/escalation/faults)

Design points, each load-bearing:

* **Canonicalize at accept.**  The full guard pass and the canonical-form
  computation happen once per request on the event loop (instances are
  small); everything downstream -- cache, coalescing, sharding, workers --
  keys and operates on the canonical representative only, so two
  relabellings of one economy are indistinguishable past this point.
* **Coalesce by canonical key.**  Identical in-flight instances share one
  future and one worker cell.  Disabled together with the cache when
  ``cache_size=0``: coalescing makes solve counts depend on arrival
  timing, and the ``cache_size=0`` contract is that counter totals are a
  pure function of the request stream.
* **One batcher, per-flush dispatch.**  Unique instances accumulate until
  ``batch_max`` or the ``linger`` window expires, then the flush is
  partitioned by ``sha256(key) % shards`` and each shard runs a
  :func:`repro.runtime.supervised_map` (its own worker process, the full
  timeout/retry/escalate/fault ladder) on an executor thread.  Shards of
  one flush run concurrently; the batcher does not pull new work until the
  flush lands, which bounds memory and makes drain trivial.
* **Metrics merge on the event loop.**  Each shard dispatch gets its own
  :class:`~repro.engine.counters.Counters` and tracer; snapshots are merged
  into the server context only on the event loop thread, so concurrent
  shards never race on the shared counters (the process-global drain marks
  are additionally lock-guarded in :mod:`repro.obs.metrics`).
"""

from __future__ import annotations

import asyncio
import hashlib
import threading
from dataclasses import dataclass, field, replace
from typing import Optional

from ..engine import Counters, EngineContext, EngineSpec
from ..exceptions import ReproError
from ..obs.tracer import Tracer
from ..runtime import RuntimePolicy, supervised_map

# Imported for its side effect: forked shard workers resolve
# repro.analysis.parallel._context_for on their first cell, and loading it
# *before* any fork keeps children out of the import machinery (a child
# forked while another thread holds an import lock would deadlock there).
from ..analysis import parallel as _parallel  # noqa: F401
from .cache import ResponseCache
from .protocol import (
    PROTOCOL_VERSION,
    decode_request_line,
    encode_response,
    error_response,
    ok_response,
)
from .solver import canonical_request, map_result, solve_cell, solve_cell_exact

__all__ = ["AllocationServer", "ServeConfig", "ServeHandle", "start_in_thread"]

#: Ceiling on one request line; a graph payload is ~60 bytes/vertex, so
#: this admits rings far beyond anything the solvers handle interactively
#: while keeping a garbage client from ballooning the reader buffer.
MAX_LINE_BYTES = 8 * 1024 * 1024


@dataclass(frozen=True)
class ServeConfig:
    """Everything an :class:`AllocationServer` needs, in one frozen value.

    ``cache_size`` governs *every* caching layer at once: the front-end
    response cache, request coalescing, and (via ``spec.with_cache``) the
    per-worker decomposition cache -- ``0`` means counter totals are
    exactly reproducible for a given request stream, independent of
    sharding and timing.  ``shards=0`` solves in-process on the serial
    supervised path (no worker processes; same retry/escalation ladder) --
    the debugging mode.
    """

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is on the handle
    spec: EngineSpec = field(default_factory=EngineSpec)
    shards: int = 2
    batch_max: int = 16
    linger_ms: float = 2.0
    cache_size: int = 1024
    policy: Optional[RuntimePolicy] = None
    faults: Optional[str] = None

    def effective_spec(self) -> EngineSpec:
        return self.spec.with_cache(self.cache_size)

    def effective_policy(self) -> RuntimePolicy:
        policy = self.policy if self.policy is not None else RuntimePolicy()
        if self.faults is not None:
            policy = replace(policy, faults=self.faults)
        return policy


class _Cell:
    """One queued unit of worker work: a unique canonical instance."""

    __slots__ = ("key", "canon_dict", "future")

    def __init__(self, key: bytes, canon_dict: dict, future: asyncio.Future) -> None:
        self.key = key
        self.canon_dict = canon_dict
        self.future = future


class AllocationServer:
    """The serving daemon; create, ``await start()``, ``await wait_closed()``.

    All mutable state (cache, coalescing map, counters) is touched only on
    the event loop thread; executor threads receive immutable cells and
    return ``(results, error, counters, tracer)`` tuples to merge.
    """

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.spec = config.effective_spec()
        # One tagged spec per shard: cells of shard i always solve on a
        # context memoized under spec i, so concurrent shard dispatches
        # (including the serial single-cell short-circuit, which runs in
        # *this* process) each accumulate onto their own metrics-drain
        # source and stay individually attributable.
        self.shard_specs = [
            replace(self.spec, tag=f"serve-shard-{i}")
            for i in range(max(config.shards, 1))
        ]
        self.policy = config.effective_policy()
        tracer = Tracer(enabled=True)
        self.ctx = EngineContext(cache_size=0, tracer=tracer)
        self.cache = ResponseCache(config.cache_size)
        self._queue: asyncio.Queue = asyncio.Queue()
        self._inflight: dict[bytes, asyncio.Future] = {}
        self._open: set = set()  # every unresolved cell future (drain waits)
        self._server: Optional[asyncio.base_events.Server] = None
        self._batcher_task: Optional[asyncio.Task] = None
        self._closed = asyncio.Event()
        self._stopping = False

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_conn,
            self.config.host,
            self.config.port,
            limit=MAX_LINE_BYTES,
        )
        self._batcher_task = asyncio.get_running_loop().create_task(self._batcher())

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def wait_closed(self) -> None:
        await self._closed.wait()

    async def shutdown(self) -> None:
        """Graceful stop: drain queued work, then close the listener."""
        if self._stopping:
            await self._closed.wait()
            return
        self._stopping = True
        await self.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._queue.put(None)  # batcher shutdown sentinel
        if self._batcher_task is not None:
            await self._batcher_task
        self._closed.set()

    async def drain(self) -> None:
        """Wait until every accepted solve has a resolved result.

        The batcher never holds work outside the queue and the open-future
        set, so quiescence is exactly: queue empty and no open futures.
        """
        while not self._queue.empty() or self._open:
            pending = list(self._open)
            if pending:
                await asyncio.wait(pending)
            else:
                await asyncio.sleep(0.001)

    def stats(self) -> dict:
        out = self.ctx.stats()
        out["protocol"] = PROTOCOL_VERSION
        out["serve_config"] = {
            "shards": self.config.shards,
            "batch_max": self.config.batch_max,
            "linger_ms": self.config.linger_ms,
            "cache_size": self.config.cache_size,
        }
        out["response_cache"] = self.cache.stats()
        return out

    # -- connection handling ---------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError) as exc:
                    # Oversized line: answer with a typed error, then close
                    # (the stream position is unrecoverable past this point).
                    self.ctx.counters.serve_errors += 1
                    writer.write(encode_response(error_response(None, exc)))
                    await writer.drain()
                    break
                if not line:
                    break
                if line.strip() == b"":
                    continue
                resp = await self._handle_line(line)
                close = resp.pop("_close", False)
                writer.write(encode_response(resp))
                await writer.drain()
                if close:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_line(self, line: bytes) -> dict:
        """One request line -> one response dict.  Never raises: every
        failure mode maps to a typed error envelope on the same
        connection."""
        with self.ctx.span("serve/accept"):
            try:
                req = decode_request_line(line)
            except ReproError as exc:
                self.ctx.counters.serve_errors += 1
                return error_response(None, exc)
        op = req["op"]
        req_id = req.get("id")
        if op == "ping":
            return ok_response(req_id, {"protocol": PROTOCOL_VERSION})
        if op == "stats":
            return ok_response(req_id, self.stats())
        if op == "drain":
            await self.drain()
            return ok_response(req_id, self.stats())
        if op == "shutdown":
            # Respond first, then stop: the client must see the ack.  The
            # listener closes after drain, so in-flight work completes.
            resp = ok_response(req_id, {"stopping": True})
            resp["_close"] = True
            asyncio.get_running_loop().create_task(self.shutdown())
            return resp
        return await self._handle_solve(req)

    async def _handle_solve(self, req: dict) -> dict:
        req_id = req.get("id")
        self.ctx.counters.serve_requests += 1
        try:
            key, order, canon_dict = canonical_request(req["graph"])
        except ReproError as exc:
            self.ctx.counters.serve_errors += 1
            return error_response(req_id, exc)

        # Every solve request is exactly one of: cache hit, coalesced onto
        # an in-flight solve, or a miss that enqueues a new cell -- the
        # three counters tile serve_requests (minus typed errors), which
        # the metrics tests assert.
        cached = self.cache.get(key)
        if cached is not None:
            self.ctx.counters.serve_cache_hits += 1
            return self._respond(req_id, cached, order)

        coalesce = self.cache.enabled  # cache_size=0 disables both layers
        with self.ctx.span("serve/coalesce"):
            future = self._inflight.get(key) if coalesce else None
            if future is not None:
                self.ctx.counters.serve_coalesced += 1
            else:
                if self.cache.enabled:
                    self.ctx.counters.serve_cache_misses += 1
                future = asyncio.get_running_loop().create_future()
                if coalesce:
                    self._inflight[key] = future
                self._open.add(future)
                future.add_done_callback(self._open.discard)
                await self._queue.put(_Cell(key, canon_dict, future))

        try:
            result = await asyncio.shield(future)
        except ReproError as exc:
            self.ctx.counters.serve_errors += 1
            return error_response(req_id, exc)
        except Exception as exc:  # supervisor-surfaced permanent failure
            self.ctx.counters.serve_errors += 1
            return error_response(req_id, exc)
        return self._respond(req_id, result, order)

    def _respond(self, req_id, result: dict, order) -> dict:
        if "error" in result:
            self.ctx.counters.serve_errors += 1
            return {"id": req_id, "status": "error", "error": dict(result["error"])}
        self.ctx.counters.serve_responses += 1
        with self.ctx.span("serve/respond"):
            return ok_response(req_id, map_result(result, order))

    # -- batching and dispatch -------------------------------------------

    async def _batcher(self) -> None:
        loop = asyncio.get_running_loop()
        linger = max(self.config.linger_ms, 0.0) / 1000.0
        while True:
            cell = await self._queue.get()
            if cell is None:
                return
            batch = [cell]
            deadline = loop.time() + linger
            stop = False
            while len(batch) < self.config.batch_max:
                timeout = deadline - loop.time()
                if timeout <= 0:
                    break
                try:
                    nxt = await asyncio.wait_for(self._queue.get(), timeout)
                except asyncio.TimeoutError:
                    break
                if nxt is None:
                    stop = True
                    break
                batch.append(nxt)
            await self._flush(batch)
            if stop:
                return

    async def _flush(self, batch: list) -> None:
        """Dispatch one flush: shard, solve concurrently, settle futures."""
        self.ctx.counters.serve_batches += 1
        loop = asyncio.get_running_loop()
        nshards = max(self.config.shards, 1)
        shards: dict[int, list] = {}
        for cell in batch:
            digest = hashlib.sha256(cell.key).digest()
            sid = int.from_bytes(digest[:4], "little") % nshards
            shards.setdefault(sid, []).append(cell)

        with self.ctx.span("serve/dispatch"):
            outcomes = await asyncio.gather(
                *(
                    loop.run_in_executor(None, self._solve_shard, sid, cells)
                    for sid, cells in shards.items()
                )
            )

        for cells, (results, error, counters, tracer) in zip(
            shards.values(), outcomes
        ):
            # Merge on the event loop thread only -- no executor thread
            # ever touches the shared context.
            self.ctx.counters.merge_snapshot(counters.snapshot())
            if self.ctx.tracer is not None:
                self.ctx.tracer.merge_snapshot(tracer.snapshot())
            for i, cell in enumerate(cells):
                self._inflight.pop(cell.key, None)
                if cell.future.cancelled():
                    continue
                if error is not None:
                    cell.future.set_exception(error)
                else:
                    result = results[i]
                    if "error" not in result:
                        self.cache.put(cell.key, result)
                    cell.future.set_result(result)

    def _solve_shard(self, sid: int, cells: list):
        """Executor-thread entry: one supervised map over a shard's cells.

        ``shards=0`` runs the serial in-process path (``processes=0``);
        otherwise each shard gets one worker process per flush, so the
        resource envelope / timeout / kill-recovery machinery is live and a
        worker death costs one shard's retry, not the server.
        """
        counters = Counters()
        tracer = Tracer(enabled=True)
        processes = 0 if self.config.shards <= 0 else 1
        items = [(self.shard_specs[sid], cell.canon_dict) for cell in cells]
        try:
            results = supervised_map(
                solve_cell,
                items,
                processes=processes,
                policy=self.policy,
                counters=counters,
                escalate_fn=solve_cell_exact,
                tracer=tracer,
            )
            return results, None, counters, tracer
        except Exception as exc:
            return None, exc, counters, tracer


# -- embedding: run the server on a background thread ----------------------


class ServeHandle:
    """A running server on a daemon thread; the test/CLI embedding handle."""

    def __init__(self, server: AllocationServer, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread, port: int) -> None:
        self.server = server
        self.loop = loop
        self.thread = thread
        self.port = port

    @property
    def ctx(self) -> EngineContext:
        return self.server.ctx

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful shutdown from any thread; idempotent.

        Safe to call after a client-issued ``shutdown`` op already stopped
        the loop -- the race between "still alive" and "loop closed" is
        inherent, so a closed loop just means the work is done.
        """
        if self.thread.is_alive():
            try:
                asyncio.run_coroutine_threadsafe(
                    self.server.shutdown(), self.loop
                ).result(timeout)
            except RuntimeError:
                pass  # loop already closed by an in-band shutdown op
        self.thread.join(timeout)


def start_in_thread(config: Optional[ServeConfig] = None,
                    timeout: float = 30.0) -> ServeHandle:
    """Start an :class:`AllocationServer` on a background event loop.

    Blocks until the listener is bound (the handle carries the real port,
    so ``port=0`` ephemeral binding is race-free for tests running many
    servers concurrently).
    """
    config = config if config is not None else ServeConfig()
    ready = threading.Event()
    box: dict = {}

    def _run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        server = AllocationServer(config)
        try:
            loop.run_until_complete(server.start())
            box["server"], box["loop"], box["port"] = server, loop, server.port
        except BaseException as exc:  # surface bind failures to the caller
            box["error"] = exc
            ready.set()
            loop.close()
            return
        ready.set()
        try:
            loop.run_until_complete(server.wait_closed())
        finally:
            loop.close()

    thread = threading.Thread(target=_run, name="repro-serve", daemon=True)
    thread.start()
    if not ready.wait(timeout):
        raise TimeoutError("repro-serve failed to start within timeout")
    if "error" in box:
        raise box["error"]
    return ServeHandle(box["server"], box["loop"], thread, box["port"])
