"""The asyncio serving front-end: accept, coalesce, batch, shard, respond.

One :class:`AllocationServer` owns a local TCP listener, a response cache,
and a single batcher task.  The life of a solve request::

    accept --> canonicalize --> cache? --> coalesce? --> queue
                                   |           |
                                  hit       in-flight      [batcher]
                                   |           |      flush on batch_max
                                   v           v        or linger expiry
                                respond <-- future <-- shard by sha256(key)
                                                         |
                                            supervised_map per shard
                                        (timeouts/retries/escalation/faults)

Design points, each load-bearing:

* **Canonicalize at accept.**  The full guard pass and the canonical-form
  computation happen once per request on the event loop (instances are
  small); everything downstream -- cache, coalescing, sharding, workers --
  keys and operates on the canonical representative only, so two
  relabellings of one economy are indistinguishable past this point.
* **Coalesce by canonical key.**  Identical in-flight instances share one
  future and one worker cell.  Disabled together with the cache when
  ``cache_size=0``: coalescing makes solve counts depend on arrival
  timing, and the ``cache_size=0`` contract is that counter totals are a
  pure function of the request stream.
* **One batcher, per-flush dispatch.**  Unique instances accumulate until
  ``batch_max`` or the ``linger`` window expires (truncated to the
  earliest deadline in the batch -- a request about to expire never waits
  out a linger it cannot afford), then the flush is partitioned by
  ``sha256(key) % shards`` and each shard runs a
  :func:`repro.runtime.supervised_map` (its own worker process, the full
  timeout/retry/escalate/fault ladder) on an executor thread.  Shards of
  one flush run concurrently; the batcher does not pull new work until the
  flush lands, and admission control bounds what can accumulate behind it.
* **Overload semantics** (:mod:`repro.serve.resilience`).  The intake
  queue is bounded (``queue_cap``): a request that would overflow it is
  *shed* with a typed ``overloaded`` envelope carrying a
  ``retry_after_ms`` hint -- never a dropped socket, never unbounded
  memory.  Below the cap, a high/low-watermark read gate pauses
  connection reads for backpressure.  Each request may carry a
  ``deadline_ms`` budget that flows into the coalesced cell (earliest
  waiter wins), truncates the batch linger, and becomes the supervised
  map's per-cell budget; a request whose budget expires anywhere on that
  path gets a typed ``deadline_exceeded`` envelope.  Per-shard circuit
  breakers watch dispatch outcomes and brown out a sick shard through the
  serial -> exact -> cache-only ladder with capped-exponential half-open
  probes.  Every request therefore terminates in exactly one typed
  envelope: result, overloaded, deadline_exceeded, or error.
* **Metrics merge on the event loop.**  Each shard dispatch gets its own
  :class:`~repro.engine.counters.Counters` and tracer; snapshots are merged
  into the server context only on the event loop thread, so concurrent
  shards never race on the shared counters (the process-global drain marks
  are additionally lock-guarded in :mod:`repro.obs.metrics`).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import hashlib
import os
import threading
import time as _time
from dataclasses import dataclass, field, replace
from typing import Optional

from ..engine import Counters, EngineContext, EngineSpec
from ..exceptions import DurabilityError, ReproError, ShutdownTimeoutError
from ..obs.tracer import Tracer
from ..runtime import RuntimePolicy, supervised_map

# Imported for its side effect: forked shard workers resolve
# repro.analysis.parallel._context_for on their first cell, and loading it
# *before* any fork keeps children out of the import machinery (a child
# forked while another thread holds an import lock would deadlock there).
from ..analysis import parallel as _parallel  # noqa: F401
from .cache import ResponseCache
from .durability import (
    DurabilityConfig,
    RequestJournal,
    durability_fingerprint,
    load_snapshot,
    save_snapshot,
)
from .protocol import (
    PROTOCOL_VERSION,
    deadline_exceeded_response,
    decode_request_line,
    encode_response,
    error_response,
    ok_response,
    overloaded_response,
)
from .resilience import (
    MODE_CACHE_ONLY,
    MODE_EXACT,
    MODE_NORMAL,
    MODE_SERIAL,
    AdmissionController,
    BreakerConfig,
    Deadline,
    ShardBreaker,
    earliest,
)
from .solver import (
    canonical_request,
    deadline_marker,
    map_result,
    solve_cell,
    solve_cell_exact,
)

__all__ = ["AllocationServer", "ServeConfig", "ServeHandle", "start_in_thread"]

#: Ceiling on one request line; a graph payload is ~60 bytes/vertex, so
#: this admits rings far beyond anything the solvers handle interactively
#: while keeping a garbage client from ballooning the reader buffer.
MAX_LINE_BYTES = 8 * 1024 * 1024


@dataclass(frozen=True)
class ServeConfig:
    """Everything an :class:`AllocationServer` needs, in one frozen value.

    ``cache_size`` governs *every* caching layer at once: the front-end
    response cache, request coalescing, and (via ``spec.with_cache``) the
    per-worker decomposition cache -- ``0`` means counter totals are
    exactly reproducible for a given request stream, independent of
    sharding and timing.  ``shards=0`` solves in-process on the serial
    supervised path (no worker processes; same retry/escalation ladder) --
    the debugging mode.
    """

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is on the handle
    spec: EngineSpec = field(default_factory=EngineSpec)
    shards: int = 2
    batch_max: int = 16
    linger_ms: float = 2.0
    cache_size: int = 1024
    policy: Optional[RuntimePolicy] = None
    faults: Optional[str] = None
    #: Admission control: hard cap on queued (accepted, not yet flushed)
    #: cells -- beyond it new work is shed with a typed ``overloaded``
    #: envelope -- and the read-gate watermarks (``None`` = derived:
    #: high = cap/2, low = high/2) that pause connection reads first.
    queue_cap: int = 256
    read_high_watermark: Optional[int] = None
    read_low_watermark: Optional[int] = None
    #: Per-request deadline applied when the request carries none
    #: (``None`` = unbounded, the historical behavior).
    default_deadline_ms: Optional[float] = None
    #: Circuit breaker: consecutive bad shard dispatches before tripping,
    #: and the capped-exponential open-window cooldown.
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 1.0
    breaker_cooldown_cap_s: float = 30.0
    #: Crash durability (:mod:`repro.serve.durability`): ``None`` keeps the
    #: historical in-memory-only behavior; a :class:`DurabilityConfig`
    #: write-ahead-journals every admission, snapshots the response cache,
    #: and replays unsettled work on restart.
    durability: Optional[DurabilityConfig] = None

    def effective_spec(self) -> EngineSpec:
        return self.spec.with_cache(self.cache_size)

    def breaker_config(self) -> BreakerConfig:
        return BreakerConfig(
            threshold=self.breaker_threshold,
            cooldown_base_s=self.breaker_cooldown_s,
            cooldown_cap_s=self.breaker_cooldown_cap_s,
        )

    def effective_policy(self) -> RuntimePolicy:
        policy = self.policy if self.policy is not None else RuntimePolicy()
        if self.faults is not None:
            policy = replace(policy, faults=self.faults)
        return policy


class _Cell:
    """One queued unit of worker work: a unique canonical instance.

    ``deadline`` is the earliest deadline among the cell's waiters; a
    coalescer arriving while the cell is still queued tightens it
    (``dispatched`` gates that -- once a flush holds the cell, its budget
    is frozen, and late coalescers are bounded by their own response-side
    ``wait_for`` instead).

    ``seq`` is the cell's write-ahead-journal admission sequence (``None``
    when durability is off): cells -- not requests -- are the journaled
    unit, so a coalesced waiter rides its cell's admission and a settle
    record fires exactly once per cell when its future resolves.
    """

    __slots__ = ("key", "canon_dict", "future", "deadline", "dispatched",
                 "seq")

    def __init__(self, key: bytes, canon_dict: dict, future: asyncio.Future,
                 deadline: Optional[Deadline] = None,
                 seq: Optional[int] = None) -> None:
        self.key = key
        self.canon_dict = canon_dict
        self.future = future
        self.deadline = deadline
        self.dispatched = False
        self.seq = seq


class AllocationServer:
    """The serving daemon; create, ``await start()``, ``await wait_closed()``.

    All mutable state (cache, coalescing map, counters) is touched only on
    the event loop thread; executor threads receive immutable cells and
    return ``(results, error, counters, tracer)`` tuples to merge.
    """

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.spec = config.effective_spec()
        # One tagged spec per shard: cells of shard i always solve on a
        # context memoized under spec i, so concurrent shard dispatches
        # (including the serial single-cell short-circuit, which runs in
        # *this* process) each accumulate onto their own metrics-drain
        # source and stay individually attributable.
        self.shard_specs = [
            replace(self.spec, tag=f"serve-shard-{i}")
            for i in range(max(config.shards, 1))
        ]
        self.policy = config.effective_policy()
        tracer = Tracer(enabled=True)
        self.ctx = EngineContext(cache_size=0, tracer=tracer)
        self.cache = ResponseCache(config.cache_size)
        self.admission = AdmissionController(
            queue_cap=config.queue_cap,
            batch_max=config.batch_max,
            high_watermark=config.read_high_watermark,
            low_watermark=config.read_low_watermark,
            linger_ms=config.linger_ms,
        )
        self.breakers = [
            ShardBreaker(i, config.breaker_config())
            for i in range(max(config.shards, 1))
        ]
        self._queue: asyncio.Queue = asyncio.Queue()
        self._inflight: dict[bytes, _Cell] = {}
        self._open: set = set()  # every unresolved cell future (drain waits)
        self._conn_tasks: set = set()  # live connection handlers (shutdown)
        self._read_gate = asyncio.Event()  # cleared = intake paused
        self._read_gate.set()
        self._server: Optional[asyncio.base_events.Server] = None
        self._batcher_task: Optional[asyncio.Task] = None
        self._closed = asyncio.Event()
        self._stopping = False
        # Crash durability (None/off unless configured).  ``restarts`` is
        # the supervisor's generation number, handed down via environment
        # so a freshly-execed child can report how many times its lineage
        # has been restarted (the ``restarts`` gauge).
        self._journal: Optional[RequestJournal] = None
        self._snapshot_task: Optional[asyncio.Task] = None
        self._snapshot_time: Optional[float] = None
        self._fingerprint: Optional[str] = None
        try:
            self.restarts = int(os.environ.get("REPRO_SERVE_RESTARTS", "0"))
        except ValueError:
            self.restarts = 0

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        if self.config.durability is not None:
            self._open_durability(self.config.durability.validated())
        self._server = await asyncio.start_server(
            self._handle_conn,
            self.config.host,
            self.config.port,
            limit=MAX_LINE_BYTES,
        )
        loop = asyncio.get_running_loop()
        self._batcher_task = loop.create_task(self._batcher())
        if self._journal is not None:
            await self._replay_pending()
            self._snapshot_task = loop.create_task(self._snapshot_loop())

    def _open_durability(self, durability: DurabilityConfig) -> None:
        """Restore the cache snapshot and open the request journal.

        Runs before the listener binds: recovery state is complete before
        the first client can connect.  A snapshot whose structure
        fingerprint does not match is *ignored* (cold cache; correct bytes
        beat warm bytes), but a foreign *journal* raises -- replaying
        someone else's admissions under this engine would be wrong work.
        """
        self._fingerprint = durability_fingerprint(self.spec)
        try:
            entries = load_snapshot(durability.snapshot_path,
                                    self._fingerprint)
        except DurabilityError:
            entries = None  # unusable snapshot: rebuild from scratch
        if entries:
            for key, value in entries:
                self.cache.put(key, value)
            self.ctx.counters.serve_snapshot_restored += len(entries)
            self._snapshot_time = _time.monotonic()
        self._journal = RequestJournal.open(
            durability.journal_path,
            self._fingerprint,
            fsync=durability.fsync,
            compact_min_settled=durability.compact_min_settled,
        )

    async def _replay_pending(self) -> None:
        """Re-enqueue every unsettled journaled admission through the
        normal solve path.

        The original waiters died with the previous process, so nobody
        awaits these futures -- the point is that the *work* completes:
        results land in the response cache (and the journal settles), so
        a client retrying its idempotent canonical instance gets the
        answer the crash swallowed.  Replays bypass admission shedding
        (they were already admitted, durably) but are counted against the
        queue so the read gate sees honest depth.
        """
        assert self._journal is not None
        loop = asyncio.get_running_loop()
        for seq, key, canon_dict in self._journal.replay_items():
            cached = self.cache.get(key)
            if cached is not None:
                # The snapshot already carries this instance's bytes; the
                # admission is complete without a solve.
                if self._journal.settle(seq):
                    self.ctx.counters.serve_journal_settles += 1
                continue
            self.ctx.counters.serve_journal_replayed += 1
            future = loop.create_future()
            # Orphaned future: retrieve any exception so a failed replay
            # never logs an "exception was never retrieved" warning.
            future.add_done_callback(
                lambda f: f.exception() if not f.cancelled() else None)
            cell = _Cell(key, canon_dict, future, seq=seq)
            if self.cache.enabled:
                self._inflight[key] = cell
            self._open.add(future)
            future.add_done_callback(self._open.discard)
            self.admission.admitted()
            self._update_read_gate()
            await self._queue.put(cell)

    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def wait_closed(self) -> None:
        await self._closed.wait()

    async def shutdown(self) -> None:
        """Graceful stop: drain queued work, then close the listener."""
        if self._stopping:
            await self._closed.wait()
            return
        self._stopping = True
        await self.drain()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._queue.put(None)  # batcher shutdown sentinel
        if self._batcher_task is not None:
            await self._batcher_task
        if self._snapshot_task is not None:
            self._snapshot_task.cancel()
            try:
                await self._snapshot_task
            except asyncio.CancelledError:
                pass
            self._snapshot_task = None
        if self._journal is not None:
            # Graceful exit: one final snapshot (drain above means the
            # cache holds every settled result) and a clean journal close,
            # so the next start restores warm and replays nothing.
            self._write_snapshot()
            self._journal.close()
        # Connection drain: every response is already on the wire (drain
        # above), so established connections end as soon as their clients
        # close.  A short grace window covers that; anything still parked
        # on readline afterwards (an idle keep-alive client) is cancelled
        # so the loop closes without destroying running tasks.
        if self._conn_tasks:
            _done, pending = await asyncio.wait(
                self._conn_tasks, timeout=1.0)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(pending)
        self._closed.set()

    async def drain(self) -> None:
        """Wait until every accepted solve has a resolved result.

        The batcher never holds work outside the queue and the open-future
        set, so quiescence is exactly: queue empty and no open futures.
        """
        while not self._queue.empty() or self._open:
            pending = list(self._open)
            if pending:
                await asyncio.wait(pending)
            else:
                await asyncio.sleep(0.001)

    async def _snapshot_loop(self) -> None:
        """Periodic cache snapshots while the server runs.

        The entry list is gathered on the event loop (cheap: list of
        shared references); the write + fsync + rename runs on an
        executor thread so a slow disk never stalls intake.
        """
        assert self.config.durability is not None
        interval = self.config.durability.snapshot_interval_s
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(interval)
            entries = self.cache.entries()
            path = self.config.durability.snapshot_path
            fingerprint = self._fingerprint
            await loop.run_in_executor(
                None, save_snapshot, path, entries, fingerprint)
            self.ctx.counters.serve_snapshot_saves += 1
            self._snapshot_time = _time.monotonic()

    def _write_snapshot(self) -> None:
        """Synchronous snapshot (shutdown path; blocking the loop is fine
        once intake is closed)."""
        assert self.config.durability is not None
        save_snapshot(self.config.durability.snapshot_path,
                      self.cache.entries(), self._fingerprint)
        self.ctx.counters.serve_snapshot_saves += 1
        self._snapshot_time = _time.monotonic()

    def _settle(self, cell) -> None:
        """Journal the terminal outcome of one cell, exactly once.

        Every path that resolves a cell's future -- worker results, shard
        dispatch errors, cache-only fast-fails, deadline markers -- lands
        here; the journal's own per-sequence idempotence makes a double
        call harmless anyway.
        """
        if self._journal is None or cell.seq is None:
            return
        if self._journal.settle(cell.seq):
            self.ctx.counters.serve_journal_settles += 1

    def stats(self) -> dict:
        out = self.ctx.stats()
        out["protocol"] = PROTOCOL_VERSION
        out["serve_config"] = {
            "shards": self.config.shards,
            "batch_max": self.config.batch_max,
            "linger_ms": self.config.linger_ms,
            "cache_size": self.config.cache_size,
            "queue_cap": self.config.queue_cap,
            "default_deadline_ms": self.config.default_deadline_ms,
        }
        out["response_cache"] = self.cache.stats()
        out["admission"] = self.admission.stats()
        out["restarts"] = self.restarts
        if self.config.durability is not None:
            age = (None if self._snapshot_time is None
                   else round(_time.monotonic() - self._snapshot_time, 3))
            out["durability"] = {
                "journal_depth": (len(self._journal)
                                  if self._journal is not None else 0),
                "snapshot_age_s": age,
                "snapshot_entries": len(self.cache),
                "fsync": self.config.durability.fsync,
                "dir": str(self.config.durability.dir),
            }
        # loop.time() is CLOCK_MONOTONIC on CPython/Linux, so monotonic
        # here keeps breaker cooldowns readable from any thread.
        now = _time.monotonic()
        out["breakers"] = {str(b.sid): b.stats(now) for b in self.breakers}
        return out

    # -- connection handling ---------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                # Backpressure: above the high watermark the server stops
                # *reading* -- kernel receive buffers fill, the client's
                # sends block, and well-behaved load slows before any
                # shedding starts.  The gate reopens at the low watermark.
                await self._read_gate.wait()
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError) as exc:
                    # Oversized line: answer with a typed error, then close
                    # (the stream position is unrecoverable past this point).
                    self.ctx.counters.serve_errors += 1
                    writer.write(encode_response(error_response(None, exc)))
                    await writer.drain()
                    break
                if not line:
                    break
                if line.strip() == b"":
                    continue
                resp = await self._handle_line(line)
                close = resp.pop("_close", False)
                writer.write(encode_response(resp))
                await writer.drain()
                if close:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            finally:
                if task is not None:
                    self._conn_tasks.discard(task)

    async def _handle_line(self, line: bytes) -> dict:
        """One request line -> one response dict.  Never raises: every
        failure mode maps to a typed error envelope on the same
        connection."""
        with self.ctx.span("serve/accept"):
            try:
                req = decode_request_line(line)
            except ReproError as exc:
                self.ctx.counters.serve_errors += 1
                return error_response(None, exc)
        op = req["op"]
        req_id = req.get("id")
        if op == "ping":
            return ok_response(req_id, {"protocol": PROTOCOL_VERSION})
        if op == "stats":
            return ok_response(req_id, self.stats())
        if op == "drain":
            await self.drain()
            return ok_response(req_id, self.stats())
        if op == "shutdown":
            # Respond first, then stop: the client must see the ack.  The
            # listener closes after drain, so in-flight work completes.
            resp = ok_response(req_id, {"stopping": True})
            resp["_close"] = True
            asyncio.get_running_loop().create_task(self.shutdown())
            return resp
        return await self._handle_solve(req)

    async def _handle_solve(self, req: dict) -> dict:
        req_id = req.get("id")
        loop = asyncio.get_running_loop()
        self.ctx.counters.serve_requests += 1
        try:
            key, order, canon_dict = canonical_request(req["graph"])
        except ReproError as exc:
            self.ctx.counters.serve_errors += 1
            return error_response(req_id, exc)

        deadline_ms = req.get("deadline_ms", self.config.default_deadline_ms)
        deadline = (Deadline.from_ms(loop.time(), deadline_ms)
                    if deadline_ms is not None else None)

        # Every solve request terminates in exactly one typed envelope --
        # result, overloaded, deadline_exceeded, or error -- and on the
        # admission side is exactly one of: cache hit, coalesce onto an
        # in-flight solve, miss (new cell), or shed.  The counters tile
        # accordingly, which the metrics tests assert.
        cached = self.cache.get(key)
        if cached is not None:
            self.ctx.counters.serve_cache_hits += 1
            return self._respond(req_id, cached, order)

        coalesce = self.cache.enabled  # cache_size=0 disables both layers
        with self.ctx.span("serve/coalesce"):
            cell = self._inflight.get(key) if coalesce else None
            if cell is not None:
                self.ctx.counters.serve_coalesced += 1
                if not cell.dispatched:
                    # A coalesced cell honors the earliest deadline among
                    # its waiters: the solve budget only ever tightens.
                    cell.deadline = earliest(cell.deadline, deadline)
                future = cell.future
            else:
                # Admission control: a new cell costs real work -- shed it
                # with a typed hint once the intake queue is at capacity.
                # (Hits and coalesces above cost nothing and always pass.)
                if self.admission.would_shed():
                    self.ctx.counters.serve_shed += 1
                    return overloaded_response(
                        req_id, self.admission.retry_after_ms())
                if self.cache.enabled:
                    self.ctx.counters.serve_cache_misses += 1
                future = loop.create_future()
                cell = _Cell(key, canon_dict, future, deadline=deadline)
                if self._journal is not None:
                    # Write-ahead: the admission is on disk before the
                    # cell can reach a worker, so a crash at any later
                    # point leaves a replayable record.  The append (and
                    # under fsync="always" its fsync) runs on the event
                    # loop -- intake latency is the price of the
                    # durability guarantee, and it is paid only by new
                    # cells, never by cache hits or coalesces.
                    cell.seq = self._journal.admit(
                        key, canon_dict, deadline_ms=deadline_ms)
                    self.ctx.counters.serve_journal_admits += 1
                if coalesce:
                    self._inflight[key] = cell
                self._open.add(future)
                future.add_done_callback(self._open.discard)
                self.admission.admitted()
                self._update_read_gate()
                await self._queue.put(cell)

        try:
            if deadline is None:
                result = await asyncio.shield(future)
            else:
                # The response-side guarantee: whatever happens below the
                # batcher, this waiter gets its typed envelope on time.
                # The shield keeps the shared solve alive for coalesced
                # siblings (and the cache) when this waiter times out.
                result = await asyncio.wait_for(
                    asyncio.shield(future),
                    max(deadline.remaining(loop.time()), 0.0))
        except asyncio.TimeoutError:
            self.ctx.counters.serve_deadline_exceeded += 1
            return deadline_exceeded_response(req_id)
        except ReproError as exc:
            self.ctx.counters.serve_errors += 1
            return error_response(req_id, exc)
        except Exception as exc:  # supervisor-surfaced permanent failure
            self.ctx.counters.serve_errors += 1
            return error_response(req_id, exc)
        return self._respond(req_id, result, order)

    def _respond(self, req_id, result: dict, order) -> dict:
        if "error" in result:
            error = dict(result["error"])
            # Deadline expirations settled below the batcher (supervised
            # budget ran out) are the same terminal outcome as a
            # response-side wait_for timeout -- count them as such, not as
            # generic errors.
            if error.get("type") == "DeadlineExceededError":
                self.ctx.counters.serve_deadline_exceeded += 1
            else:
                self.ctx.counters.serve_errors += 1
            return {"id": req_id, "status": "error", "error": error}
        self.ctx.counters.serve_responses += 1
        with self.ctx.span("serve/respond"):
            return ok_response(req_id, map_result(result, order))

    def _update_read_gate(self) -> None:
        paused = not self._read_gate.is_set()
        want_pause = self.admission.should_pause(paused)
        if want_pause and not paused:
            self._read_gate.clear()
            self.ctx.counters.serve_read_pauses += 1
        elif paused and not want_pause:
            self._read_gate.set()

    # -- batching and dispatch -------------------------------------------

    async def _batcher(self) -> None:
        loop = asyncio.get_running_loop()
        linger = max(self.config.linger_ms, 0.0) / 1000.0
        while True:
            cell = await self._queue.get()
            if cell is None:
                return
            batch = [cell]
            flush_at = loop.time() + linger
            stop = False
            while len(batch) < self.config.batch_max:
                # The linger never outlives the earliest deadline in the
                # batch: a request about to expire flushes immediately
                # rather than waiting out a window it cannot afford.
                cutoff = flush_at
                for c in batch:
                    if c.deadline is not None and c.deadline.at < cutoff:
                        cutoff = c.deadline.at
                timeout = cutoff - loop.time()
                if timeout <= 0:
                    break
                try:
                    nxt = await asyncio.wait_for(self._queue.get(), timeout)
                except asyncio.TimeoutError:
                    break
                if nxt is None:
                    stop = True
                    break
                batch.append(nxt)
            # From here the batch's deadlines are frozen (late coalescers
            # are bounded by their own response-side wait_for instead) and
            # the cells no longer count against the intake queue.
            for c in batch:
                c.dispatched = True
            self.admission.dequeued(len(batch))
            self._update_read_gate()
            await self._flush(batch)
            if stop:
                return

    async def _flush(self, batch: list) -> None:
        """Dispatch one flush: shard, solve concurrently, settle futures.

        Each shard's dispatch mode comes from its circuit breaker: normal
        (worker pool), serial, exact, or -- the deepest brownout --
        cache-only, where queued cells fast-fail with a typed
        ``CircuitOpenError`` without dispatching at all.  Outcomes feed
        back into the breakers after the flush lands.
        """
        self.ctx.counters.serve_batches += 1
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        nshards = max(self.config.shards, 1)
        shards: dict[int, list] = {}
        for cell in batch:
            digest = hashlib.sha256(cell.key).digest()
            sid = int.from_bytes(digest[:4], "little") % nshards
            shards.setdefault(sid, []).append(cell)

        dispatches: list = []  # (sid, cells, probe) actually dispatched
        jobs = []
        for sid, cells in shards.items():
            mode, probe = self.breakers[sid].dispatch_mode(t0)
            if probe:
                self.ctx.counters.breaker_probes += 1
            if mode == MODE_CACHE_ONLY:
                self._fastfail_shard(sid, cells, t0)
                continue
            # Budgets are computed at dispatch time: whatever the request
            # already spent queued and lingering is gone from what the
            # supervised map may use.
            budgets = [
                None if cell.deadline is None
                else max(cell.deadline.remaining(t0), 0.0)
                for cell in cells
            ]
            dispatches.append((sid, cells, probe))
            jobs.append(loop.run_in_executor(
                None, self._solve_shard, sid, cells, mode, budgets))

        if not jobs:
            return
        with self.ctx.span("serve/dispatch"):
            outcomes = await asyncio.gather(*jobs)
        now = loop.time()
        self.admission.observe_flush(now - t0)

        for (sid, cells, probe), (results, error, counters, tracer) in zip(
            dispatches, outcomes
        ):
            # Merge on the event loop thread only -- no executor thread
            # ever touches the shared context.
            snapshot = counters.snapshot()
            self.ctx.counters.merge_snapshot(snapshot)
            if self.ctx.tracer is not None:
                self.ctx.tracer.merge_snapshot(tracer.snapshot())
            # Feed the breaker.  Degraded non-probe outcomes are ignored
            # inside on_outcome; "bad" means the shard itself is sick
            # (supervisor failure, worker kills, cell timeouts,
            # escalations), never per-request typed errors or deadline
            # expirations.
            bad = ShardBreaker.outcome_is_bad(error, snapshot)
            detail = (f"{type(error).__name__}: {error}" if error is not None
                      else "sick dispatch counters" if bad else None)
            if self.breakers[sid].on_outcome(not bad, now, probe=probe,
                                             detail=detail):
                self.ctx.counters.breaker_trips += 1
            for i, cell in enumerate(cells):
                self._inflight.pop(cell.key, None)
                # Any resolution -- result, deadline marker, or dispatch
                # error -- is a terminal typed outcome: settle the
                # journaled admission so a restart does not redo it.
                self._settle(cell)
                if cell.future.cancelled():
                    continue
                if error is not None:
                    cell.future.set_exception(error)
                else:
                    result = results[i]
                    if "error" not in result:
                        self.cache.put(cell.key, result)
                    cell.future.set_result(result)

    def _fastfail_shard(self, sid: int, cells: list, now: float) -> None:
        """Cache-only brownout: settle every queued cell with a typed
        ``CircuitOpenError`` marker carrying the remaining cooldown.  Cache
        hits never reach the queue, so everything here is necessarily a
        miss the shard is too sick to solve."""
        self.ctx.counters.breaker_fastfails += len(cells)
        retry_after = self.breakers[sid].retry_after_ms(now)
        for cell in cells:
            self._inflight.pop(cell.key, None)
            self._settle(cell)
            if cell.future.cancelled():
                continue
            cell.future.set_result({"error": {
                "type": "CircuitOpenError",
                "message": (
                    f"shard {sid} circuit open (cache-only brownout); "
                    f"retry after {retry_after:.0f} ms"),
                "retry_after_ms": round(retry_after, 3),
            }})

    def _solve_shard(self, sid: int, cells: list, mode: str, budgets: list):
        """Executor-thread entry: one supervised map over a shard's cells.

        ``shards=0`` runs the serial in-process path (``processes=0``);
        otherwise each shard gets one worker process per flush, so the
        resource envelope / timeout / kill-recovery machinery is live and a
        worker death costs one shard's retry, not the server.  Breaker
        brownouts override the mode: ``serial`` drops the worker process
        (nothing left to kill), ``exact`` additionally skips the failing
        float attempts and solves straight on the ``Fraction`` backend.
        Per-cell deadline budgets flow into the map; an expired cell
        settles as a ``DeadlineExceededError`` marker via
        :func:`deadline_marker` instead of failing its batch.
        """
        counters = Counters()
        tracer = Tracer(enabled=True)
        processes = 0 if self.config.shards <= 0 else 1
        fn = solve_cell
        escalate = solve_cell_exact
        if mode == MODE_SERIAL:
            processes = 0
        elif mode == MODE_EXACT:
            processes = 0
            fn = solve_cell_exact
            escalate = None
        items = [(self.shard_specs[sid], cell.canon_dict) for cell in cells]
        if all(b is None for b in budgets):
            budgets = None
        try:
            results = supervised_map(
                fn,
                items,
                processes=processes,
                policy=self.policy,
                counters=counters,
                escalate_fn=escalate,
                tracer=tracer,
                budgets=budgets,
                on_deadline=deadline_marker,
            )
            return results, None, counters, tracer
        except Exception as exc:
            return None, exc, counters, tracer


# -- embedding: run the server on a background thread ----------------------


class ServeHandle:
    """A running server on a daemon thread; the test/CLI embedding handle."""

    def __init__(self, server: AllocationServer, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread, port: int) -> None:
        self.server = server
        self.loop = loop
        self.thread = thread
        self.port = port

    @property
    def ctx(self) -> EngineContext:
        return self.server.ctx

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful shutdown from any thread; idempotent.

        Safe to call after a client-issued ``shutdown`` op already stopped
        the loop -- the race between "still alive" and "loop closed" is
        inherent, so a closed loop just means the work is done.  Raises
        :class:`~repro.exceptions.ShutdownTimeoutError` when the server
        thread fails to exit within ``timeout`` -- a silent non-join left
        callers believing a possibly-wedged server was gone.
        """
        if self.thread.is_alive():
            try:
                asyncio.run_coroutine_threadsafe(
                    self.server.shutdown(), self.loop
                ).result(timeout)
            except RuntimeError:
                pass  # loop already closed by an in-band shutdown op
            except concurrent.futures.TimeoutError:
                raise ShutdownTimeoutError(
                    f"repro-serve graceful shutdown did not complete within "
                    f"{timeout:.1f}s (drain wedged or loop unresponsive)"
                ) from None
        self.thread.join(timeout)
        if self.thread.is_alive():
            raise ShutdownTimeoutError(
                f"repro-serve thread failed to exit within {timeout:.1f}s "
                "after shutdown completed")


def start_in_thread(config: Optional[ServeConfig] = None,
                    timeout: float = 30.0) -> ServeHandle:
    """Start an :class:`AllocationServer` on a background event loop.

    Blocks until the listener is bound (the handle carries the real port,
    so ``port=0`` ephemeral binding is race-free for tests running many
    servers concurrently).
    """
    config = config if config is not None else ServeConfig()
    ready = threading.Event()
    box: dict = {}

    def _run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        server = AllocationServer(config)
        try:
            loop.run_until_complete(server.start())
            box["server"], box["loop"], box["port"] = server, loop, server.port
        except BaseException as exc:  # surface bind failures to the caller
            box["error"] = exc
            ready.set()
            loop.close()
            return
        ready.set()
        try:
            loop.run_until_complete(server.wait_closed())
        finally:
            loop.close()

    thread = threading.Thread(target=_run, name="repro-serve", daemon=True)
    thread.start()
    if not ready.wait(timeout):
        raise TimeoutError("repro-serve failed to start within timeout")
    if "error" in box:
        raise box["error"]
    return ServeHandle(box["server"], box["loop"], thread, box["port"])
