"""Benchmark + reproduction of EXP-LB (lower-bound family series).

Times the full experiment harness at smoke scale and asserts its internal
shape checks; see EXPERIMENTS.md for the recorded default-scale numbers.
"""


def bench_lower_bound(benchmark, run_and_report):
    run_and_report(benchmark, "EXP-LB")
