"""Benchmark + reproduction of EXP-MSP (multi-identity ablation)."""


def bench_multi_identity(benchmark, run_and_report):
    run_and_report(benchmark, "EXP-MSP")
