"""Benchmark + reproduction of EXP-T10 (Theorem 10 truthfulness).

Times the full experiment harness at smoke scale and asserts its internal
shape checks; see EXPERIMENTS.md for the recorded default-scale numbers.
"""


def bench_truthfulness(benchmark, run_and_report):
    run_and_report(benchmark, "EXP-T10")
