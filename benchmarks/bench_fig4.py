"""Benchmark + reproduction of EXP-F4 (Fig. 4 initial forms census).

Times the full experiment harness at smoke scale and asserts its internal
shape checks; see EXPERIMENTS.md for the recorded default-scale numbers.
"""


def bench_fig4(benchmark, run_and_report):
    run_and_report(benchmark, "EXP-F4")
