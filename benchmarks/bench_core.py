"""Micro-benchmarks of the core machinery.

These time the primitives every experiment is built from: the parametric
bottleneck decomposition (float and exact), the BD allocation, one best
response, and the vectorized dynamics -- at sizes bracketing the experiment
sweeps, so harness-cost regressions show up here first.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attack import best_split, incentive_ratio
from repro.core import bd_allocation, bottleneck_decomposition, proportional_response
from repro.engine import EngineContext
from repro.flow import FlowNetwork, dinic_max_flow, edmonds_karp_max_flow, push_relabel_max_flow
from repro.graphs import random_ring
from repro.numeric import EXACT, FLOAT


def _ring(n: int, seed: int = 0):
    return random_ring(n, np.random.default_rng(seed), "loguniform", 0.1, 10)


@pytest.mark.parametrize("n", [8, 32, 128])
def bench_decomposition_float(benchmark, n):
    g = _ring(n)
    d = benchmark(bottleneck_decomposition, g, FLOAT)
    assert d.k >= 1


@pytest.mark.parametrize("n", [8, 32])
def bench_decomposition_exact(benchmark, n):
    g = random_ring(n, np.random.default_rng(0), "integer", 1, 100)
    d = benchmark(bottleneck_decomposition, g, EXACT)
    assert d.k >= 1


@pytest.mark.parametrize("n", [8, 32, 128])
def bench_allocation(benchmark, n):
    g = _ring(n)
    d = bottleneck_decomposition(g, FLOAT)
    alloc = benchmark(bd_allocation, g, d, FLOAT)
    assert len(alloc.utilities) == n


@pytest.mark.parametrize("n", [16, 64, 256])
def bench_dynamics(benchmark, n):
    # mixing on a ring is diffusive (~n^2 steps), so the budget scales with n
    g = random_ring(n, np.random.default_rng(1), "uniform", 0.5, 2.0)
    res = benchmark(proportional_response, g, 40 * n * n, 1e-8, 0.3)
    assert res.converged


@pytest.mark.parametrize("n", [6, 12])
def bench_best_response(benchmark, n):
    g = _ring(n, seed=2)
    r = benchmark(best_split, g, 0, 24)
    assert r.ratio <= 2.0 + 1e-6


@pytest.mark.parametrize("cache", [0, 1024], ids=["uncached", "cached"])
def bench_best_response_cache(benchmark, cache):
    """Steady-state cached vs uncached best-response sweeps.

    One long-lived context serves repeated ``incentive_ratio`` queries --
    the sweep-resume / interactive usage pattern.  Within a single query the
    cache only absorbs the per-vertex truthful re-decompositions, but across
    queries every split decomposition repeats, so the cached rows should sit
    far below the uncached ones while producing identical zeta values.
    """
    g = _ring(8, seed=3)
    ctx = EngineContext(cache_size=cache)

    def sweep():
        return incentive_ratio(g, grid=16, ctx=ctx)

    inst = benchmark(sweep)
    assert inst.zeta <= 2.0 + 1e-6
    stats = ctx.stats()
    assert (stats["cache"]["hits"] > 0) == bool(cache)


def _bipartite_net(n: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    net = FlowNetwork(2 + 2 * n)
    for i in range(n):
        net.add_edge(0, 2 + i, float(rng.uniform(0.5, 2)))
        net.add_edge(2 + n + i, 1, float(rng.uniform(0.5, 2)))
        for j in range(n):
            if rng.random() < 0.2:
                net.add_edge(2 + i, 2 + n + j, float("inf"))
    return net


@pytest.mark.parametrize("solver", [dinic_max_flow, edmonds_karp_max_flow, push_relabel_max_flow],
                         ids=["dinic", "edmonds-karp", "push-relabel"])
def bench_maxflow_solvers(benchmark, solver):
    base = _bipartite_net(40)

    def solve():
        net = base.clone()
        return solver(net, 0, 1)

    value = benchmark(solve)
    assert value >= 0
