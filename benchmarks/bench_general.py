"""Benchmark + reproduction of EXP-GEN (general-graph conjecture).

Times the conjecture sweep at smoke scale and asserts its shape checks.
"""


def bench_general(benchmark, run_and_report):
    run_and_report(benchmark, "EXP-GEN")
