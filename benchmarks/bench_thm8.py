"""Benchmark + reproduction of EXP-T8 (Theorem 8 ratio sweep).

Times the full experiment harness at smoke scale and asserts its internal
shape checks; see EXPERIMENTS.md for the recorded default-scale numbers.
"""


def bench_thm8(benchmark, run_and_report):
    run_and_report(benchmark, "EXP-T8")
