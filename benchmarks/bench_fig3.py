"""Benchmark + reproduction of EXP-F3 (Fig. 3 pair dynamics).

Times the full experiment harness at smoke scale and asserts its internal
shape checks; see EXPERIMENTS.md for the recorded default-scale numbers.
"""


def bench_fig3(benchmark, run_and_report):
    run_and_report(benchmark, "EXP-F3")
