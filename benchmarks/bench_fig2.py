"""Benchmark + reproduction of EXP-F2 (Fig. 2 alpha curves).

Times the full experiment harness at smoke scale and asserts its internal
shape checks; see EXPERIMENTS.md for the recorded default-scale numbers.
"""


def bench_fig2(benchmark, run_and_report):
    run_and_report(benchmark, "EXP-F2")
