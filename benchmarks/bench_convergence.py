"""Benchmark + reproduction of EXP-CNV (dynamics convergence).

Times the full experiment harness at smoke scale and asserts its internal
shape checks; see EXPERIMENTS.md for the recorded default-scale numbers.
"""


def bench_convergence(benchmark, run_and_report):
    run_and_report(benchmark, "EXP-CNV")
