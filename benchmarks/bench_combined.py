"""Benchmark + reproduction of EXP-CMB (split + under-reporting ablation)."""


def bench_combined(benchmark, run_and_report):
    run_and_report(benchmark, "EXP-CMB")
