"""Shared fixtures for the benchmark harness.

Every ``bench_<exp>.py`` regenerates one paper artifact: it runs the
experiment through ``pytest-benchmark`` (timing the harness), prints the
reproduced rows (run with ``-s`` to see them), and asserts the experiment's
internal shape checks -- so ``pytest benchmarks/ --benchmark-only`` is both
a performance record and a reproduction certificate.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment


@pytest.fixture
def run_and_report():
    """Run one experiment under the benchmark timer and report it."""

    def _run(benchmark, exp_id: str, scale: str = "smoke", seed: int = 0):
        out = benchmark.pedantic(
            lambda: run_experiment(exp_id, seed=seed, scale=scale),
            rounds=1,
            iterations=1,
        )
        print()
        print(out.render())
        failed = [c for c in out.checks if not c.ok]
        assert not failed, "; ".join(f"{c.name}: {c.details}" for c in failed)
        return out

    return _run
