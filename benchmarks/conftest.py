"""Shared fixtures for the benchmark harness.

Every ``bench_<exp>.py`` regenerates one paper artifact: it runs the
experiment through ``pytest-benchmark`` (timing the harness), prints the
reproduced rows (run with ``-s`` to see them), and asserts the experiment's
internal shape checks -- so ``pytest benchmarks/ --benchmark-only`` is both
a performance record and a reproduction certificate.

Experiment runs execute under a traced :class:`~repro.engine.EngineContext`
(``repro.obs`` spans), and the fixture prints the span breakdown next to
the reproduced rows -- the same signal ``repro-bench`` records in
``BENCH_<tag>.json``, here in human-readable form.
"""

from __future__ import annotations

import pytest

from repro.engine import EngineContext, using_context
from repro.experiments import run_experiment
from repro.obs import Tracer


@pytest.fixture
def run_and_report():
    """Run one experiment under the benchmark timer and report it."""

    def _run(benchmark, exp_id: str, scale: str = "smoke", seed: int = 0):
        ctx = EngineContext()
        ctx.tracer = Tracer()

        def _traced():
            # using_context so experiments whose run() has not grown a
            # ``ctx`` parameter still resolve this traced context.
            with using_context(ctx):
                return run_experiment(exp_id, seed=seed, scale=scale, ctx=ctx)

        out = benchmark.pedantic(
            _traced,
            rounds=1,
            iterations=1,
        )
        print()
        print(out.render())
        spans = ctx.tracer.snapshot()
        if spans:
            print("spans (total/self/count):")
            for path in sorted(spans):
                s = spans[path]
                print(f"  {path:40s} {s['total_s']:.4f}s {s['self_s']:.4f}s "
                      f"x{s['count']}")
        failed = [c for c in out.checks if not c.ok]
        assert not failed, "; ".join(f"{c.name}: {c.details}" for c in failed)
        return out

    return _run
