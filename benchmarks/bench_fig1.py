"""Benchmark + reproduction of EXP-F1 (Fig. 1 decomposition example).

Times the full experiment harness at smoke scale and asserts its internal
shape checks; see EXPERIMENTS.md for the recorded default-scale numbers.
"""


def bench_fig1(benchmark, run_and_report):
    run_and_report(benchmark, "EXP-F1")
