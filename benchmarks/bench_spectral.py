"""Benchmark + reproduction of EXP-SPC (spectral convergence ablation)."""


def bench_spectral(benchmark, run_and_report):
    run_and_report(benchmark, "EXP-SPC")
