"""Legacy shim so `setup.py develop` works in offline environments
where the `wheel` package (needed by PEP 660 editable installs) is absent."""
from setuptools import setup

setup()
