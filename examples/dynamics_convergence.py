#!/usr/bin/env python
"""Convergence behaviour of proportional response across ring parities.

Even rings are bipartite, and the raw tit-for-tat update can fall into a
2-cycle whose two orbit points straddle the equilibrium; odd rings mix.
This example measures iterations-to-convergence for the raw and damped
updates over a range of sizes, demonstrating why the simulator offers the
damped mode (and that both agree with the BD allocation in the end).

Run:  python examples/dynamics_convergence.py
"""

import numpy as np

from repro import FLOAT, bd_allocation, proportional_response
from repro.graphs import random_ring
from repro.io import format_table


def main() -> None:
    rng = np.random.default_rng(11)
    rows = []
    for n in (3, 4, 5, 8, 9, 16, 17, 32):
        g = random_ring(n, rng, "uniform", 0.5, 4.0)
        raw = proportional_response(g, max_iters=120_000, tol=1e-11)
        damped = proportional_response(g, max_iters=120_000, tol=1e-11, damping=0.3)
        alloc = bd_allocation(g, backend=FLOAT)
        err = max(abs(damped.utility_of(v) - float(alloc.utilities[v]))
                  for v in g.vertices())
        rows.append([
            n, "even" if n % 2 == 0 else "odd",
            raw.iterations,
            "2-cycle" if raw.oscillating else ("yes" if raw.converged else "no"),
            damped.iterations,
            err,
        ])
    print(format_table(
        ["n", "parity", "raw iters", "raw converged", "damped iters", "max |U - eq.(2)|"],
        rows, title="proportional response convergence (tol 1e-11)"))
    print("\ntakeaway: damping (beta = 0.3) converges everywhere; the raw update")
    print("matches it on odd rings and may 2-cycle on even (bipartite) rings,")
    print("with the orbit average still on the equilibrium.")


if __name__ == "__main__":
    main()
