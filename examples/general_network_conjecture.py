#!/usr/bin/env python
"""Probing the paper's closing conjecture on general P2P networks.

The paper proves the incentive ratio of 2 for rings and conjectures it for
general networks.  This example mounts full Sybil attacks (every neighbor
bipartition x weight split, plus a three-identity variant) on a handful of
topologies and reports the best gain each attacker can extract.

Run:  python examples/general_network_conjecture.py
"""

import numpy as np

from repro.attack import best_general_split, best_multi_split
from repro.graphs import complete, grid2d, random_connected_graph, star
from repro.io import format_table


def main() -> None:
    rng = np.random.default_rng(42)
    instances = [
        ("star (rich center)", star(20.0, [1.0, 2.0, 1.5, 0.5])),
        ("star (poor center)", star(0.5, [5.0, 8.0, 3.0])),
        ("clique K4", complete(list(rng.uniform(0.5, 10, size=4)))),
        ("2x3 grid", grid2d(2, 3, list(rng.uniform(0.5, 10, size=6)))),
        ("random sparse", random_connected_graph(7, 2, rng, "loguniform", 0.05, 20)),
        ("random dense", random_connected_graph(6, 6, rng, "loguniform", 0.05, 20)),
    ]

    rows = []
    overall = 0.0
    for name, g in instances:
        best_ratio, best_v, best_m3 = 1.0, None, 1.0
        for v in g.vertices():
            if g.degree(v) < 2:
                continue
            r = best_general_split(g, v, grid=16)
            if r.ratio > best_ratio:
                best_ratio, best_v = r.ratio, v
            if g.degree(v) >= 3:
                r3 = best_multi_split(g, v, 3, steps=8, refine_rounds=1)
                best_m3 = max(best_m3, r3.ratio)
        overall = max(overall, best_ratio, best_m3)
        rows.append([name, g.n, g.m, best_v, best_ratio, best_m3])

    print(format_table(
        ["network", "n", "edges", "worst attacker", "zeta (m=2)", "zeta (m=3)"],
        rows, title="Sybil incentive ratios on general networks"))
    print(f"\nmax observed ratio: {overall:.6f}")
    print("conjecture (Section IV): the supremum over ALL networks is 2 --")
    print("every instance here obeys it, like every instance EXP-GEN sweeps.")


if __name__ == "__main__":
    main()
