#!/usr/bin/env python
"""Quickstart: the resource-sharing pipeline end to end.

Builds a small weighted ring, computes its bottleneck decomposition and the
BD allocation (the fixed point of BitTorrent-style proportional response),
simulates the distributed dynamics, and confirms both give every agent the
same equilibrium utility.

Run:  python examples/quickstart.py
"""

from repro import EXACT, FLOAT, bd_allocation, bottleneck_decomposition, proportional_response, ring
from repro.core import closed_form_utilities
from repro.io import format_table


def main() -> None:
    # a 6-agent ring; weights are upload capacities agents bring to the swarm
    g = ring([4, 1, 2, 8, 3, 1], labels=[f"peer{i}" for i in range(6)])
    print(f"ring with weights {list(g.weights)}\n")

    # 1. the combinatorial structure: bottleneck decomposition (Definition 2)
    decomp = bottleneck_decomposition(g, EXACT)
    rows = [
        [p.index,
         "{" + ", ".join(g.labels[v] for v in sorted(p.B)) + "}",
         "{" + ", ".join(g.labels[v] for v in sorted(p.C)) + "}",
         float(p.alpha)]
        for p in decomp.pairs
    ]
    print(format_table(["i", "B_i", "C_i", "alpha_i"], rows,
                       title="Bottleneck decomposition"))
    print()

    # 2. the equilibrium allocation (Definition 5) and utilities (Prop. 6)
    alloc = bd_allocation(g, decomp, EXACT)
    closed = closed_form_utilities(decomp)
    rows = [
        [g.labels[v], float(g.weights[v]), float(alloc.utilities[v]), float(closed[v])]
        for v in g.vertices()
    ]
    print(format_table(["agent", "w_v", "U_v (allocation)", "U_v (closed form)"], rows,
                       title="Equilibrium utilities"))
    print()

    # 3. the distributed protocol converges to the same point (Definition 1)
    gf = g.with_weights([float(w) for w in g.weights])
    res = proportional_response(gf, tol=1e-12, damping=0.3)
    rows = [
        [g.labels[v], res.utility_of(v), float(alloc.utilities[v]),
         abs(res.utility_of(v) - float(alloc.utilities[v]))]
        for v in g.vertices()
    ]
    print(format_table(["agent", "dynamics U_v", "mechanism U_v", "|diff|"], rows,
                       title=f"Proportional response after {res.iterations} iterations"))


if __name__ == "__main__":
    main()
