#!/usr/bin/env python
"""P2P bandwidth sharing a la BitTorrent: tit-for-tat on a swarm graph.

The motivation of the paper's Section I: peers contribute upload bandwidth
and the proportional response protocol rewards contribution.  This example
builds a random swarm (general graph, not just a ring), runs the
distributed protocol, and shows

* equilibrium download rates match the BD allocation exactly,
* rewards scale with contribution: a free-rider (tiny weight) earns almost
  nothing while a seeder (large weight) earns proportionally,
* the closed form U_v = w_v * alpha or w_v / alpha of Proposition 6.

Run:  python examples/p2p_bandwidth_sharing.py
"""

import numpy as np

from repro import FLOAT, bd_allocation, bottleneck_decomposition, proportional_response
from repro.graphs import random_connected_graph
from repro.io import format_table


def main() -> None:
    rng = np.random.default_rng(7)
    n = 12
    swarm = random_connected_graph(n, extra_edges=10, rng=rng,
                                   distribution="uniform", low=1.0, high=8.0)
    # plant a free-rider and a seeder
    weights = list(swarm.weights)
    weights[0] = 0.05   # free-rider: barely uploads
    weights[1] = 40.0   # seeder: uploads massively
    swarm = swarm.with_weights(weights)

    print(f"swarm: {swarm.n} peers, {swarm.m} connections")
    decomp = bottleneck_decomposition(swarm, FLOAT)
    alloc = bd_allocation(swarm, decomp, FLOAT)
    res = proportional_response(swarm, tol=1e-12, damping=0.3, max_iters=200_000)

    rows = []
    for v in swarm.vertices():
        role = {0: "free-rider", 1: "seeder"}.get(v, "peer")
        rows.append([
            f"peer{v} ({role})",
            float(swarm.weights[v]),
            float(decomp.alpha_of(v)),
            "B" if decomp.in_B(v) and not decomp.in_C(v)
            else ("C" if decomp.in_C(v) and not decomp.in_B(v) else "B+C"),
            float(alloc.utilities[v]),
            res.utility_of(v),
        ])
    print(format_table(
        ["peer", "upload w_v", "alpha_v", "class", "download (mechanism)", "download (protocol)"],
        rows, title="\nequilibrium download rates"))

    fr, seed_u = float(alloc.utilities[0]), float(alloc.utilities[1])
    print(f"\nfree-rider downloads {fr:.4f} for uploading {weights[0]}")
    print(f"seeder     downloads {seed_u:.4f} for uploading {weights[1]}")
    print("tit-for-tat at work: reward is proportional to contribution within a pair"
          f" (ratio {seed_u / max(fr, 1e-12):.1f}x)")

    drift = max(abs(res.utility_of(v) - float(alloc.utilities[v])) for v in swarm.vertices())
    print(f"\nprotocol vs mechanism max drift: {drift:.2e} "
          f"(converged in {res.iterations} rounds)")


if __name__ == "__main__":
    main()
