#!/usr/bin/env python
"""A Sybil attack that (nearly) doubles an agent's bandwidth.

Walks through the paper's headline phenomenon on the adversarial family
``[1, 1, 1/H, 1/H, H]``: agent v=1 splits into two fake identities, hands
almost all its weight to one of them, and collects just under twice its
honest utility -- but never more (Theorem 8: the incentive ratio is exactly
two).

Run:  python examples/sybil_attack_demo.py
"""

import numpy as np

from repro import FLOAT, bd_allocation, best_split
from repro.attack import lower_bound_ring, split_ring, utility_of_split_curve
from repro.io import format_table


def main() -> None:
    H = 1000.0
    g = lower_bound_ring(H)
    v = 1
    print(f"ring weights: {[float(w) for w in g.weights]}, attacker: v={v}\n")

    honest = float(bd_allocation(g, backend=FLOAT).utilities[v])
    print(f"honest utility U_v = {honest:.6f}")

    # the attacker's landscape: U(w1) over all weight splits
    w1s = np.linspace(0.0, float(g.weights[v]), 9)
    curve = utility_of_split_curve(g, v, w1s)
    print(format_table(
        ["w1 (to one fake id)", "w2", "total Sybil utility", "ratio vs honest"],
        [[w1, float(g.weights[v]) - w1, u, u / honest] for w1, u in zip(w1s, curve)],
        title="\nattack landscape (coarse)",
    ))

    # the optimum, located by the best-response search
    br = best_split(g, v, grid=256)
    print(f"\noptimal split: w1* = {br.w1:.8f}, w2* = {br.w2:.3e}")
    print(f"optimal Sybil utility = {br.utility:.6f}")
    print(f"incentive ratio zeta_v = {br.ratio:.6f}  (Theorem 8 bound: 2)")

    # what the equilibrium looks like under the optimal attack
    out = split_ring(g, v, br.w1, br.w2, FLOAT)
    print("\npost-attack bottleneck pairs on the split path:")
    for p in out.decomposition.pairs:
        names = [out.path.labels[u] for u in sorted(p.B)]
        print(f"  B_{p.index} = {names}, alpha = {float(p.alpha):.6f}")
    print(f"fake id v^1 earns {float(out.utility_v1):.6f}, v^2 earns {float(out.utility_v2):.6f}")

    assert br.ratio <= 2.0 + 1e-9, "Theorem 8 violated?!"
    print("\nTheorem 8 holds: the attacker cannot more than double its utility.")


if __name__ == "__main__":
    main()
