#!/usr/bin/env python
"""Hunt for the worst-case ring: how close to ratio 2 can an instance get?

Runs the randomized hill-climbing search over ring weight profiles, prints
the best instance found, compares it against the codified lower-bound
family, and archives the champion to JSON so a later run can reload it.

Run:  python examples/worst_case_hunt.py [seed]
"""

import sys

import numpy as np

from repro.attack import lower_bound_series, search_worst_ring
from repro.io import dump_graph, format_table


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    rng = np.random.default_rng(seed)

    print("hill-climbing over 5-vertex rings (this samples a few hundred instances)...")
    result = search_worst_ring(5, rng, restarts=3, sweeps=5, grid=48)
    g = result.graph
    br = result.response
    print(f"\nbest instance after {result.evaluations} evaluations:")
    print(f"  weights = {[round(float(w), 6) for w in g.weights]}")
    print(f"  attacker v = {br.vertex}, split = ({br.w1:.6g}, {br.w2:.6g})")
    print(f"  zeta = {result.zeta:.6f}   (Theorem 8 says this can never exceed 2)")

    print("\nthe codified family closes the remaining gap:")
    pts = lower_bound_series([10, 100, 1000, 1e5])
    print(format_table(
        ["H", "zeta(H)", "gap to 2"],
        [[p.H, p.zeta, p.gap_to_two] for p in pts],
    ))

    out = "worst_ring.json"
    dump_graph(g, out)
    print(f"\nchampion archived to {out} (reload with repro.io.load_graph)")


if __name__ == "__main__":
    main()
